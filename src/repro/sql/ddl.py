"""DDL for declaring warehouse catalogs in SQL.

Supports the subset needed to describe the paper's source schemas::

    CREATE TABLE sale (
        id INT PRIMARY KEY,
        timeid INT REFERENCES time,
        productid INT REFERENCES product(id),
        storeid INT REFERENCES store,
        price INT
    ) -- WITH EXPOSED UPDATES may follow the column list

Types: INT/INTEGER, FLOAT/REAL/DOUBLE, STRING/TEXT/VARCHAR[(n)], BOOL /
BOOLEAN.  Exactly one column must be declared PRIMARY KEY (the paper
assumes single-attribute keys).  ``REFERENCES t`` defaults to ``t``'s
key; an explicit ``(column)`` must name it.  A trailing ``WITH EXPOSED
UPDATES`` marks the table per Section 2.1.
"""

from __future__ import annotations

from repro.catalog.database import BaseTable, Database
from repro.engine.types import AttributeType
from repro.sql.lexer import Token, tokenize


class SqlDdlError(Exception):
    """Raised on malformed DDL or catalog inconsistencies."""


_TYPE_NAMES = {
    "INT": AttributeType.INT,
    "INTEGER": AttributeType.INT,
    "FLOAT": AttributeType.FLOAT,
    "REAL": AttributeType.FLOAT,
    "DOUBLE": AttributeType.FLOAT,
    "STRING": AttributeType.STRING,
    "TEXT": AttributeType.STRING,
    "VARCHAR": AttributeType.STRING,
    "CHAR": AttributeType.STRING,
    "BOOL": AttributeType.BOOL,
    "BOOLEAN": AttributeType.BOOL,
}


def parse_schema(sql: str) -> Database:
    """Parse one or more CREATE TABLE statements into a Database.

    Referential constraints may point at tables declared later; they are
    validated once all statements are read.
    """
    parser = _DdlParser(tokenize(sql))
    tables = []
    while not parser.at_end():
        tables.append(parser.parse_create_table())
    database = Database()
    for table in tables:
        database.add_table(table)
    _validate_references(database)
    return database


def parse_table(sql: str) -> BaseTable:
    """Parse a single CREATE TABLE statement."""
    parser = _DdlParser(tokenize(sql))
    table = parser.parse_create_table()
    if not parser.at_end():
        raise SqlDdlError("unexpected trailing input after CREATE TABLE")
    return table


def _validate_references(database: Database) -> None:
    for table in database.tables:
        declared_columns = getattr(table, "_declared_ref_columns", {})
        for constraint in table.references:
            if constraint.referenced not in database:
                raise SqlDdlError(
                    f"{constraint} references an undeclared table"
                )
            referenced = database.table(constraint.referenced)
            explicit = declared_columns.get(constraint.attribute)
            if explicit is not None and explicit != referenced.key:
                raise SqlDdlError(
                    f"{constraint} must target the key "
                    f"{referenced.key!r}, not {explicit!r} "
                    "(GPSJ views join on keys)"
                )
            declared = table.schema.attribute(constraint.attribute)
            key_attr = referenced.schema.attribute(referenced.key)
            if declared.atype is not key_attr.atype:
                raise SqlDdlError(
                    f"{constraint}: type {declared.atype.value} does not "
                    f"match key type {key_attr.atype.value}"
                )


class _DdlParser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    def at_end(self) -> bool:
        return self._peek().kind == "EOF"

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect_word(self, word: str) -> None:
        token = self._advance()
        value = token.value if isinstance(token.value, str) else None
        if value is None or value.upper() != word:
            raise SqlDdlError(f"expected {word}, found {token}")

    def _expect_punct(self, symbol: str) -> None:
        token = self._advance()
        if not (token.kind in ("PUNCT", "OPERATOR") and token.value == symbol):
            raise SqlDdlError(f"expected {symbol!r}, found {token}")

    def _match_punct(self, symbol: str) -> bool:
        token = self._peek()
        if token.kind in ("PUNCT", "OPERATOR") and token.value == symbol:
            self._advance()
            return True
        return False

    def _match_word(self, word: str) -> bool:
        token = self._peek()
        value = token.value if isinstance(token.value, str) else None
        if value is not None and value.upper() == word and token.kind in (
            "IDENT",
            "KEYWORD",
        ):
            self._advance()
            return True
        return False

    def _expect_ident(self) -> str:
        token = self._advance()
        if token.kind != "IDENT":
            raise SqlDdlError(f"expected identifier, found {token}")
        return token.value

    # ------------------------------------------------------------------

    def parse_create_table(self) -> BaseTable:
        self._expect_word("CREATE")
        self._expect_word("TABLE")
        name = self._expect_ident()
        self._expect_punct("(")
        columns: dict[str, AttributeType] = {}
        references: dict[str, str | None] = {}
        explicit_ref_columns: dict[str, str] = {}
        key: str | None = None
        while True:
            column, atype, is_key, ref = self._parse_column()
            if column in columns:
                raise SqlDdlError(f"duplicate column {column!r} in {name!r}")
            columns[column] = atype
            if is_key:
                if key is not None:
                    raise SqlDdlError(
                        f"table {name!r} declares two primary keys "
                        f"({key!r} and {column!r}); the paper assumes "
                        "single-attribute keys"
                    )
                key = column
            if ref is not None:
                ref_table, ref_column = ref
                references[column] = ref_table
                if ref_column is not None:
                    explicit_ref_columns[column] = ref_column
            if self._match_punct(")"):
                break
            self._expect_punct(",")
        if key is None:
            raise SqlDdlError(f"table {name!r} has no PRIMARY KEY")
        exposed = False
        if self._match_word("WITH"):
            self._expect_word("EXPOSED")
            self._expect_word("UPDATES")
            exposed = True
        table = BaseTable(
            name,
            columns,
            key=key,
            references={c: t for c, t in references.items()},
            exposed_updates=exposed,
        )
        # Remember explicit referenced columns for later validation.
        table._declared_ref_columns = explicit_ref_columns  # noqa: SLF001
        return table

    def _parse_column(self):
        column = self._expect_ident()
        atype = self._parse_type()
        is_key = False
        reference: tuple[str, str | None] | None = None
        while True:
            if self._match_word("PRIMARY"):
                self._expect_word("KEY")
                is_key = True
                continue
            if self._match_word("REFERENCES"):
                target = self._expect_ident()
                target_column = None
                if self._match_punct("("):
                    target_column = self._expect_ident()
                    self._expect_punct(")")
                reference = (target, target_column)
                continue
            if self._match_word("NOT"):
                # NOT NULL is implicit (the engine forbids nulls); accept
                # and ignore it for compatibility.
                self._expect_word("NULL")
                continue
            break
        return column, atype, is_key, reference

    def _parse_type(self) -> AttributeType:
        token = self._advance()
        name = token.value if isinstance(token.value, str) else None
        if name is None or name.upper() not in _TYPE_NAMES:
            raise SqlDdlError(f"unknown type {token}")
        atype = _TYPE_NAMES[name.upper()]
        if self._match_punct("("):  # VARCHAR(n) and friends
            size = self._advance()
            if size.kind != "NUMBER":
                raise SqlDdlError(f"expected a size, found {size}")
            self._expect_punct(")")
        return atype
