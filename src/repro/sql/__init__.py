"""A SQL front-end for the GPSJ dialect used in the paper.

Parses ``CREATE VIEW name AS SELECT ... FROM ... WHERE ... GROUP BY ...
[HAVING ...]`` statements into :class:`~repro.core.view.ViewDefinition`
objects, classifying WHERE conjuncts into local conditions and key
joins against a catalog.
"""

from repro.sql.ast import CountStar, Exists, SelectStatement, TableRef
from repro.sql.lexer import SqlLexError, Token, tokenize
from repro.sql.parser import SqlParseError, parse_select, parse_view

__all__ = [
    "tokenize",
    "Token",
    "SqlLexError",
    "parse_view",
    "parse_select",
    "SqlParseError",
    "SelectStatement",
    "TableRef",
    "Exists",
    "CountStar",
]
