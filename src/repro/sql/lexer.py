"""Tokenizer for the GPSJ SQL dialect.

Token kinds: KEYWORD (case-insensitive reserved words), IDENT (optionally
dotted), NUMBER (int or float), STRING (single-quoted, '' escapes),
OPERATOR (comparison/arithmetic), PUNCT (parens, comma, star), EOF.
"""

from __future__ import annotations

from dataclasses import dataclass


class SqlLexError(Exception):
    """Raised on unrecognizable input."""


KEYWORDS = frozenset(
    {
        "CREATE",
        "VIEW",
        "AS",
        "SELECT",
        "DISTINCT",
        "FROM",
        "WHERE",
        "AND",
        "OR",
        "NOT",
        "IN",
        "GROUP",
        "BY",
        "HAVING",
        "EXISTS",
        "COUNT",
        "SUM",
        "AVG",
        "MIN",
        "MAX",
        "TRUE",
        "FALSE",
    }
)

_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/")
_PUNCT = "(),."


@dataclass(frozen=True)
class Token:
    """One lexical token with its position for error messages."""

    kind: str  # KEYWORD | IDENT | NUMBER | STRING | OPERATOR | PUNCT | EOF
    value: object
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "KEYWORD" and self.value == word

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.value!r}"


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; always ends with an EOF token."""
    tokens: list[Token] = []
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text[i + 1 : i + 2] == "-":  # line comment
            end = text.find("\n", i)
            i = length if end == -1 else end + 1
            continue
        if ch == "'":
            value, i = _read_string(text, i)
            tokens.append(Token("STRING", value, i))
            continue
        if ch.isdigit() or (
            ch == "." and text[i + 1 : i + 2].isdigit()
        ):
            value, i = _read_number(text, i)
            tokens.append(Token("NUMBER", value, i))
            continue
        if ch.isalpha() or ch == "_":
            value, i = _read_word(text, i)
            upper = value.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, i))
            else:
                tokens.append(Token("IDENT", value, i))
            continue
        operator = _match_operator(text, i)
        if operator is not None:
            tokens.append(Token("OPERATOR", operator, i))
            i += len(operator)
            continue
        if ch in _PUNCT:
            tokens.append(Token("PUNCT", ch, i))
            i += 1
            continue
        raise SqlLexError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("EOF", None, length))
    return tokens


def _read_string(text: str, start: int) -> tuple[str, int]:
    i = start + 1
    parts: list[str] = []
    while i < len(text):
        ch = text[i]
        if ch == "'":
            if text[i + 1 : i + 2] == "'":  # escaped quote
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise SqlLexError(f"unterminated string starting at position {start}")


def _read_number(text: str, start: int) -> tuple[object, int]:
    i = start
    seen_dot = False
    while i < len(text) and (text[i].isdigit() or (text[i] == "." and not seen_dot)):
        if text[i] == ".":
            # A dot not followed by a digit is punctuation (e.g. `1.x`
            # never occurs; `t.a` is handled by the word reader).
            if not text[i + 1 : i + 2].isdigit():
                break
            seen_dot = True
        i += 1
    literal = text[start:i]
    return (float(literal) if seen_dot else int(literal)), i


def _read_word(text: str, start: int) -> tuple[str, int]:
    i = start
    while i < len(text) and (text[i].isalnum() or text[i] == "_"):
        i += 1
    return text[start:i], i


def _match_operator(text: str, i: int) -> str | None:
    # `*`, `-`, `/`, `+` double as punctuation contexts (COUNT(*)); the
    # parser disambiguates by position.
    for operator in _OPERATORS:
        if text.startswith(operator, i):
            return operator
    return None
