"""Base tables and the source-side database.

:class:`BaseTable` couples a relation with its warehouse-relevant
metadata (key, referential constraints, exposed-update flag).
:class:`Database` is the *operational data store* of Figure 1: it owns
the live base tables, validates integrity, and is the ground truth that
warehouse maintenance must reproduce without reading it.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.catalog.constraints import ReferentialConstraint
from repro.engine.deltas import Delta, Transaction
from repro.engine.relation import Relation
from repro.engine.schema import Attribute, Schema
from repro.engine.types import AttributeType


class IntegrityError(Exception):
    """Raised when a change would violate key or referential integrity."""


class BaseTable:
    """A source base table: schema + key + constraints + live rows."""

    def __init__(
        self,
        name: str,
        columns: Mapping[str, AttributeType],
        key: str,
        references: Mapping[str, str] | None = None,
        exposed_updates: bool = False,
        rows: Iterable[tuple] = (),
    ):
        """``references`` maps foreign-key attribute -> referenced table name."""
        if key not in columns:
            raise ValueError(f"key {key!r} is not a column of {name!r}")
        self.name = name
        self.key = key
        self.exposed_updates = exposed_updates
        self.schema = Schema(
            Attribute(column, atype, qualifier=name)
            for column, atype in columns.items()
        )
        references = dict(references or {})
        for attribute in references:
            if attribute not in columns:
                raise ValueError(
                    f"foreign key {attribute!r} is not a column of {name!r}"
                )
        self.references = tuple(
            ReferentialConstraint(name, attribute, referenced)
            for attribute, referenced in references.items()
        )
        self.relation = Relation(self.schema, rows)

    @property
    def column_names(self) -> tuple[str, ...]:
        return self.schema.names()

    def key_index(self) -> int:
        return self.schema.index_of(self.key)

    def key_values(self) -> set[object]:
        index = self.key_index()
        return {row[index] for row in self.relation}

    def reference_for(self, attribute: str) -> ReferentialConstraint | None:
        for constraint in self.references:
            if constraint.attribute == attribute:
                return constraint
        return None

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"BaseTable({self.name}, {len(self.relation)} rows)"


class Database:
    """The operational data store: a named collection of base tables."""

    def __init__(self, tables: Iterable[BaseTable] = ()):
        self._tables: dict[str, BaseTable] = {}
        for table in tables:
            self.add_table(table)

    def add_table(self, table: BaseTable) -> None:
        if table.name in self._tables:
            raise ValueError(f"duplicate table {table.name!r}")
        self._tables[table.name] = table

    def table(self, name: str) -> BaseTable:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"no table named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    @property
    def tables(self) -> tuple[BaseTable, ...]:
        return tuple(self._tables.values())

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    def relation(self, name: str) -> Relation:
        return self.table(name).relation

    def validate_integrity(self) -> None:
        """Check all key and referential constraints on the current state."""
        key_sets = {
            table.name: table.key_values() for table in self._tables.values()
        }
        for table in self._tables.values():
            if len(key_sets[table.name]) != len(table.relation):
                raise IntegrityError(f"duplicate key values in {table.name!r}")
            for constraint in table.references:
                if constraint.referenced not in self._tables:
                    continue
                index = table.schema.index_of(constraint.attribute)
                referenced_keys = key_sets[constraint.referenced]
                for row in table.relation:
                    if row[index] not in referenced_keys:
                        raise IntegrityError(
                            f"{constraint}: dangling value {row[index]!r}"
                        )

    def apply(self, transaction: Transaction, validate: bool = True) -> None:
        """Apply a transaction in the RI-safe order.

        Deletions run first in referencing-before-referenced order,
        insertions second in referenced-before-referencing order, so no
        intermediate state dangles.
        """
        order = self._dependency_order()
        for name in order:
            delta = transaction.delta_for(name)
            if delta.deleted:
                self.table(name).relation.delete_all(delta.deleted)
        for name in reversed(order):
            delta = transaction.delta_for(name)
            if delta.inserted:
                self.table(name).relation.insert_all(delta.inserted)
        for delta in transaction:
            if delta.table not in self._tables and not delta.empty:
                raise KeyError(f"transaction touches unknown table {delta.table!r}")
        if validate:
            self.validate_integrity()

    def apply_delta(self, delta: Delta, validate: bool = True) -> None:
        self.apply(Transaction.of(delta), validate=validate)

    def _dependency_order(self) -> list[str]:
        """Table names ordered so each table precedes the tables it references."""
        order: list[str] = []
        visiting: set[str] = set()

        def visit(name: str) -> None:
            if name in order or name not in self._tables:
                return
            if name in visiting:
                raise IntegrityError("cyclic referential constraints")
            visiting.add(name)
            # Tables referencing this one must be deleted from first.
            for other in self._tables.values():
                if any(c.referenced == name for c in other.references):
                    visit(other.name)
            visiting.discard(name)
            order.append(name)

        for name in self._tables:
            visit(name)
        return order

    def snapshot(self) -> "Database":
        """A deep copy of the current state (used by recompute baselines)."""
        copied = Database()
        for table in self._tables.values():
            clone = BaseTable(
                table.name,
                {a.name: a.atype for a in table.schema},
                table.key,
                {c.attribute: c.referenced for c in table.references},
                table.exposed_updates,
            )
            clone.relation = table.relation.copy()
            copied.add_table(clone)
        return copied
