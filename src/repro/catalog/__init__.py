"""Catalog: base-table metadata and the source database container."""

from repro.catalog.constraints import ReferentialConstraint
from repro.catalog.database import BaseTable, Database, IntegrityError

__all__ = ["ReferentialConstraint", "BaseTable", "Database", "IntegrityError"]
