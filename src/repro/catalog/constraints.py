"""Key and referential-integrity constraint declarations.

The paper's join reductions and auxiliary-view elimination hinge on three
pieces of metadata per base table: its (single-attribute) key, the
referential-integrity constraints from its foreign keys to other tables'
keys, and whether it has *exposed updates* — updates that may change
attributes involved in selection or join conditions (Section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ReferentialConstraint:
    """``referencing.attribute`` references ``referenced.key``.

    Under such a constraint every tuple of the referencing table joins
    with exactly one tuple of the referenced table, and insertions into
    the referenced table can never join with pre-existing referencing
    tuples — the two facts that make join reductions sound (Section 2.2).
    """

    referencing: str
    attribute: str
    referenced: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.referencing}.{self.attribute} -> {self.referenced}"
