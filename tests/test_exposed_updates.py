"""Exposed updates (Section 2.1/2.2): the cases that break join reductions.

A table has *exposed updates* when updates may change attributes in
selection or join conditions.  Declaring them disables dependence on the
table, which disables join reductions against it — the price of staying
exactly maintainable.  These tests cover the scenarios the paper warns
about, on both star and snowflake shapes.
"""

from repro.core.derivation import derive_auxiliary_views
from repro.core.maintenance import SelfMaintainer
from repro.engine.deltas import Delta, Transaction
from repro.workloads.retail import product_sales_view
from repro.workloads.snowflake import (
    build_snowflake_database,
    category_sales_view,
)

from tests.helpers import assert_same_bag, paper_database


def run(maintainer, database, transaction, context=""):
    database.apply(transaction)
    maintainer.apply(transaction)
    assert_same_bag(
        maintainer.current_view(),
        maintainer.view.evaluate(database),
        context,
    )


class TestExposedDimensionInStar:
    def make(self):
        database = paper_database()
        database.table("time").exposed_updates = True
        view = product_sales_view(1997)
        return database, SelfMaintainer(view, database)

    def test_no_join_reduction_on_exposed_table(self):
        database, maintainer = self.make()
        sale = maintainer.aux_set.for_table("sale")
        assert "time" not in {j.right_table for j in sale.reduced_by}
        # saledtl therefore keeps the 1996 sale too.
        timeids = {row[0] for row in maintainer.aux_relation("sale")}
        assert 4 in timeids

    def test_update_pulling_rows_in(self):
        database, maintainer = self.make()
        run(
            maintainer,
            database,
            Transaction.of(
                Delta.update(
                    "time",
                    old_rows=[(4, 1, 1, 1996)],
                    new_rows=[(4, 1, 4, 1997)],
                )
            ),
            "1996 day moves into 1997",
        )
        months = {row[0] for row in maintainer.current_view()}
        assert 4 in months

    def test_update_pushing_rows_out_then_back(self):
        database, maintainer = self.make()
        out = Transaction.of(
            Delta.update(
                "time",
                old_rows=[(1, 1, 1, 1997)],
                new_rows=[(1, 1, 1, 1990)],
            )
        )
        run(maintainer, database, out, "day leaves the view")
        back = Transaction.of(
            Delta.update(
                "time",
                old_rows=[(1, 1, 1, 1990)],
                new_rows=[(1, 1, 1, 1997)],
            )
        )
        run(maintainer, database, back, "day returns to the view")


class TestExposedMiddleTableInSnowflake:
    def make(self):
        database = build_snowflake_database()
        database.table("product").exposed_updates = True
        view = category_sales_view()
        return database, SelfMaintainer(view, database)

    def test_sale_not_reduced_by_exposed_product(self):
        database, maintainer = self.make()
        sale = maintainer.aux_set.for_table("sale")
        assert "product" not in {j.right_table for j in sale.reduced_by}

    def test_recategorizing_a_product(self):
        # Changing product.categoryid moves its sales between department
        # groups — a join-condition change, i.e. an exposed update.
        database, maintainer = self.make()
        old = next(iter(database.relation("product").rows))
        new_category = old[1] % 5 + 1  # a different existing category
        new = (old[0], new_category, old[2])
        run(
            maintainer,
            database,
            Transaction.of(Delta.update("product", [old], [new])),
            "product moves to another category",
        )

    def test_stream_with_recategorizations(self):
        import random

        database, maintainer = self.make()
        rng = random.Random(3)
        for step in range(15):
            products = database.relation("product").rows
            old = rng.choice(products)
            new = (old[0], rng.randint(1, 5), old[2])
            if new == old:
                continue
            run(
                maintainer,
                database,
                Transaction.of(Delta.update("product", [old], [new])),
                f"recategorization {step}",
            )


class TestExposureChangesDerivation:
    def test_aux_views_grow_without_reductions(self):
        database = paper_database()
        reduced = derive_auxiliary_views(product_sales_view(1997), database)
        database.table("time").exposed_updates = True
        unreduced = derive_auxiliary_views(product_sales_view(1997), database)
        reduced_rows = reduced.materialize(database)["sale"]
        unreduced_rows = unreduced.materialize(database)["sale"]
        # Without the time reduction, the 1996 group stays in saledtl.
        assert len(unreduced_rows) == len(reduced_rows) + 1

    def test_elimination_blocked_by_exposure(self):
        from repro.workloads.snowflake import category_sales_by_product_view

        database = build_snowflake_database()
        database.table("product").exposed_updates = True
        aux = derive_auxiliary_views(category_sales_by_product_view(), database)
        assert aux.eliminated == {}
        assert aux.has_view("sale")
