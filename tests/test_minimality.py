"""Minimality witnesses for Theorem 1.

The derived auxiliary set is minimal: *no subset* of it still maintains
``V``.  Each test here removes one piece — a view, an attribute, the
COUNT(*), or a single tuple — and exhibits two source databases (or one
database plus a transaction) that the crippled detail data cannot tell
apart although ``V`` differs.  Information-theoretic witnesses, exactly
the shape of the paper's omitted proof.
"""

from repro.core.derivation import derive_auxiliary_views
from repro.engine.operators import project
from repro.workloads.retail import product_sales_view

from tests.helpers import bag, paper_database


def sale_rows(groups):
    """Build sale rows from (timeid, productid, [prices])."""
    rows = []
    sale_id = 0
    for timeid, productid, prices in groups:
        for price in prices:
            sale_id += 1
            rows.append((sale_id, timeid, productid, 1, price))
    return rows


def crippled_aux(database, drop_column=None, drop_table=None):
    """Materialize the paper view's auxiliary set minus one piece."""
    view = product_sales_view(1997)
    aux = derive_auxiliary_views(view, database)
    relations = aux.materialize(database)
    if drop_table is not None:
        del relations[drop_table]
    if drop_column is not None:
        table, column = drop_column
        relation = relations[table]
        keep = [
            name
            for name in relation.schema.qualified_names()
            if name != column
        ]
        relations[table] = project(relation, keep, distinct=False)
    return view, relations


def views_differ(database_a, database_b):
    view = product_sales_view(1997)
    return bag(view.evaluate(database_a)) != bag(view.evaluate(database_b))


def details_agree(relations_a, relations_b):
    if set(relations_a) != set(relations_b):
        return False
    return all(
        bag(relations_a[t]) == bag(relations_b[t]) for t in relations_a
    )


class TestCountColumnIsNecessary:
    def test_same_sums_different_counts(self):
        # Two databases with identical per-group price sums but different
        # duplicate counts: without COUNT(*), saledtl cannot distinguish
        # them, yet TotalCount differs.
        db_a = paper_database(sale_rows([(1, 1, [10])]))
        db_b = paper_database(sale_rows([(1, 1, [4, 6])]))
        __, aux_a = crippled_aux(db_a, drop_column=("sale", "sale.cnt"))
        __, aux_b = crippled_aux(db_b, drop_column=("sale", "sale.cnt"))
        assert details_agree(aux_a, aux_b)
        assert views_differ(db_a, db_b)


class TestSumColumnIsNecessary:
    def test_same_counts_different_sums(self):
        db_a = paper_database(sale_rows([(1, 1, [4, 6])]))
        db_b = paper_database(sale_rows([(1, 1, [3, 8])]))
        __, aux_a = crippled_aux(db_a, drop_column=("sale", "sale.sum_price"))
        __, aux_b = crippled_aux(db_b, drop_column=("sale", "sale.sum_price"))
        assert details_agree(aux_a, aux_b)
        assert views_differ(db_a, db_b)


class TestDimensionAttributesAreNecessary:
    def test_month_column_needed(self):
        # Same sales, but day 1 moved to another month: identical
        # auxiliary data without timedtl.month, different groups in V.
        db_a = paper_database(sale_rows([(1, 1, [10])]))
        db_b = paper_database(sale_rows([(1, 1, [10])]))
        db_b.table("time").relation.delete((1, 1, 1, 1997))
        db_b.table("time").relation.insert((1, 1, 7, 1997))
        __, aux_a = crippled_aux(db_a, drop_column=("time", "time.month"))
        __, aux_b = crippled_aux(db_b, drop_column=("time", "time.month"))
        assert details_agree(aux_a, aux_b)
        assert views_differ(db_a, db_b)

    def test_brand_column_needed(self):
        db_a = paper_database(sale_rows([(1, 1, [10]), (1, 2, [10])]))
        db_b = paper_database(sale_rows([(1, 1, [10]), (1, 2, [10])]))
        # In db_b product 2 carries a different brand.
        db_b.table("product").relation.delete((2, "acme", "bakery"))
        db_b.table("product").relation.insert((2, "otherbrand", "bakery"))
        __, aux_a = crippled_aux(db_a, drop_column=("product", "product.brand"))
        __, aux_b = crippled_aux(db_b, drop_column=("product", "product.brand"))
        assert details_agree(aux_a, aux_b)
        assert views_differ(db_a, db_b)


class TestWholeViewsAreNecessary:
    def test_productdtl_needed(self):
        db_a = paper_database(sale_rows([(1, 1, [10]), (1, 2, [10])]))
        db_b = paper_database(sale_rows([(1, 1, [10]), (1, 2, [10])]))
        db_b.table("product").relation.delete((2, "acme", "bakery"))
        db_b.table("product").relation.insert((2, "zeta", "bakery"))
        __, aux_a = crippled_aux(db_a, drop_table="product")
        __, aux_b = crippled_aux(db_b, drop_table="product")
        assert details_agree(aux_a, aux_b)
        assert views_differ(db_a, db_b)

    def test_timedtl_needed(self):
        db_a = paper_database(sale_rows([(2, 1, [10])]))
        db_b = paper_database(sale_rows([(2, 1, [10])]))
        db_b.table("time").relation.delete((2, 2, 1, 1997))
        db_b.table("time").relation.insert((2, 2, 9, 1997))
        __, aux_a = crippled_aux(db_a, drop_table="time")
        __, aux_b = crippled_aux(db_b, drop_table="time")
        assert details_agree(aux_a, aux_b)
        assert views_differ(db_a, db_b)


class TestTuplesAreNecessary:
    def test_unsold_product_tuple_needed_for_future_insertions(self):
        # productdtl keeps even currently-unsold products: a sale of one
        # can arrive later, and its brand must be known then.  Witness:
        # dbs differing only in the brand of the unsold product 3 have
        # identical details once that tuple is dropped, but diverge after
        # the same insertion.
        from repro.engine.deltas import Delta, Transaction

        base_rows = sale_rows([(1, 1, [10])])
        db_a = paper_database(base_rows)
        db_b = paper_database(base_rows)
        db_b.table("product").relation.delete((3, "bestco", "dairy"))
        db_b.table("product").relation.insert((3, "acme", "dairy"))

        def drop_product_3(relations):
            relation = relations["product"]
            relations["product"] = type(relation)(
                relation.schema,
                [row for row in relation if row[0] != 3],
                validate=False,
            )
            return relations

        __, aux_a = crippled_aux(db_a)
        __, aux_b = crippled_aux(db_b)
        assert details_agree(drop_product_3(aux_a), drop_product_3(aux_b))

        transaction = Transaction.of(
            Delta.insertion("sale", [(90, 1, 3, 1, 7)])
        )
        db_a.apply(transaction)
        db_b.apply(transaction)
        assert views_differ(db_a, db_b)

    def test_reduced_out_tuples_are_not_needed(self):
        # Sanity inverse: tuples removed by local reduction (1996 times)
        # never matter — two dbs differing only there have identical
        # auxiliary sets AND identical views, before and after valid
        # changes that the reductions filter out.
        db_a = paper_database(sale_rows([(1, 1, [10])]))
        db_b = paper_database(sale_rows([(1, 1, [10])]))
        db_b.table("time").relation.delete((4, 1, 1, 1996))
        db_b.table("time").relation.insert((4, 9, 1, 1996))
        __, aux_a = crippled_aux(db_a)
        __, aux_b = crippled_aux(db_b)
        assert details_agree(aux_a, aux_b)
        assert not views_differ(db_a, db_b)
