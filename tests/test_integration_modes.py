"""Cross-feature integration: operation modes composed with each other.

Deferred refresh over sealed sources, checkpointing mid-stream, shared
detail with deferred application, and append-only under deferral — the
combinations a production deployment would actually run.
"""

import json

from repro.core.maintenance import SelfMaintainer
from repro.engine.deltas import Delta, Transaction
from repro.warehouse.deferred import DeferredMaintainer
from repro.warehouse.persistence import dump_maintainer, restore_maintainer
from repro.warehouse.shared import SharedDetailWarehouse
from repro.warehouse.sources import SealedSource
from repro.workloads.retail import (
    RetailConfig,
    build_retail_database,
    product_sales_max_view,
    product_sales_view,
)
from repro.workloads.streams import TransactionGenerator

from tests.helpers import assert_same_bag, paper_database
from tests.test_persistence import catalog_only


def small_retail():
    return build_retail_database(
        RetailConfig(
            days=12,
            stores=2,
            products=15,
            products_sold_per_day=6,
            transactions_per_product=2,
            start_year=1997,
        )
    )


class TestDeferredOverSealedSources:
    def test_refresh_never_reads_sources(self):
        database = small_retail()
        view = product_sales_view(1997)
        source = SealedSource(database)
        deferred = DeferredMaintainer(SelfMaintainer(view, source))
        source.seal()
        generator = TransactionGenerator(database, seed=41)
        for __ in range(15):
            deferred.apply(generator.step())
        deferred.refresh()
        assert source.blocked_reads == 0
        source.unseal()
        assert_same_bag(deferred.current_view(), view.evaluate(database))


class TestCheckpointMidStream:
    def test_checkpoint_restore_continue(self):
        database = small_retail()
        view = product_sales_view(1997)
        maintainer = SelfMaintainer(view, database)
        generator = TransactionGenerator(database, seed=43)
        for __ in range(10):
            maintainer.apply(generator.step())

        checkpoint = json.loads(json.dumps(dump_maintainer(maintainer)))
        restored = restore_maintainer(view, catalog_only(database), checkpoint)

        # Both instances keep maintaining from the same stream.
        for __ in range(10):
            transaction = generator.step()
            maintainer.apply(transaction)
            restored.apply(transaction)
        truth = view.evaluate(database)
        assert_same_bag(maintainer.current_view(), truth)
        assert_same_bag(restored.current_view(), truth)

    def test_append_only_checkpoint(self):
        database = paper_database()
        view = product_sales_max_view()
        maintainer = SelfMaintainer(view, database, append_only=True)
        transaction = Transaction.of(
            Delta.insertion("sale", [(300, 1, 2, 1, 9_999)])
        )
        database.apply(transaction)
        maintainer.apply(transaction)
        checkpoint = json.loads(json.dumps(dump_maintainer(maintainer)))
        restored = restore_maintainer(
            view, catalog_only(database), checkpoint, append_only=True
        )
        assert_same_bag(restored.current_view(), view.evaluate(database))


class TestSharedWithDeferredApplication:
    def test_batched_shared_detail(self):
        # The shared warehouse applies transactions one by one, but a
        # deferred buffer in front of it coalesces churn first.
        from repro.engine.deltas import coalesce

        database = small_retail()
        views = [product_sales_view(1997), product_sales_max_view()]
        warehouse = SharedDetailWarehouse(views, database)
        generator = TransactionGenerator(database, seed=47)
        buffered = [generator.step() for __ in range(20)]
        warehouse.apply(coalesce(buffered))
        for view in views:
            assert_same_bag(
                warehouse.summary(view.name), view.evaluate(database)
            )


class TestDeferredAppendOnly:
    def test_coalesced_insert_batches(self):
        database = paper_database()
        view = product_sales_max_view()
        deferred = DeferredMaintainer(
            SelfMaintainer(view, database, append_only=True)
        )
        next_id = 500
        for batch in range(4):
            rows = [
                (next_id + i, 1 + (next_id + i) % 3, 1 + i % 3, 1, 10 + i)
                for i in range(5)
            ]
            next_id += 5
            transaction = Transaction.of(Delta.insertion("sale", rows))
            database.apply(transaction)
            deferred.apply(transaction)
        deferred.refresh()
        assert_same_bag(deferred.current_view(), view.evaluate(database))
