"""Differential tests: the SQLite and columnar backends against the
interpreter.

The paper's reductions are relational algebra; nothing about them is
specific to the in-memory interpreter.  These properties pin that down:
for random GPSJ views, random delta streams, and injected faults, a
SQLite- or columnar-backed maintainer must be row-multiset-identical to
both the memory backend and ground-truth recomputation — including
after rollbacks, where SQLite's native savepoint restore and the
columnar stores' key-snapshot undo stand in for the interpreter's
row-by-row replay.
"""

from hypothesis import HealthCheck, given, settings, strategies as st
import pytest

from repro.backends.base import make_backend
from repro.backends.sqlite import SQLiteBackend
from repro.core.maintenance import SelfMaintainer
from repro.plan.planner import view_plan
from repro.sql import parse_view
from repro.testing.faults import (
    FaultInjector,
    InjectedFault,
    state_fingerprint,
    verify_index_consistency,
)
from repro.warehouse.warehouse import Warehouse
from repro.workloads.random_gen import random_scenario
from repro.workloads.retail import (
    RetailConfig,
    build_retail_database,
    product_sales_max_view,
    product_sales_view,
)
from repro.workloads.streams import TransactionGenerator

from tests.helpers import assert_same_bag, paper_database

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _assert_maintainers_match(sqlite_m, memory_m, context=""):
    assert_same_bag(
        sqlite_m.current_view(), memory_m.current_view(), context
    )
    for table in memory_m.aux_relations():
        assert_same_bag(
            sqlite_m.aux_relation(table),
            memory_m.aux_relation(table),
            f"{context} aux={table}",
        )


@given(seed=st.integers(0, 10_000), steps=st.integers(1, 5))
@settings(**SETTINGS)
def test_sqlite_maintainer_tracks_memory_and_recomputation(seed, steps):
    scenario = random_scenario(seed)
    memory_m = SelfMaintainer(scenario.view, scenario.database,
                              backend="memory")
    sqlite_m = SelfMaintainer(scenario.view, scenario.database,
                              backend="sqlite")
    for step in range(steps):
        transaction = scenario.generator.step()
        memory_m.apply(transaction)
        sqlite_m.apply(transaction)
        context = f"seed={seed} step={step}"
        _assert_maintainers_match(sqlite_m, memory_m, context)
        assert_same_bag(
            sqlite_m.current_view(),
            scenario.view.evaluate_eager(scenario.database),
            context,
        )


@given(seed=st.integers(0, 10_000))
@settings(**SETTINGS)
def test_sqlite_view_evaluation_matches_eager(seed):
    scenario = random_scenario(seed)
    backend = SQLiteBackend()
    plan = view_plan(scenario.view, scenario.database)
    result = backend.execute_view_plan(plan, scenario.database)
    assert_same_bag(
        result,
        scenario.view.evaluate_eager(scenario.database),
        f"seed={seed}",
    )


def test_groupby_free_view_yields_no_row_over_empty_input():
    """SQL's empty-input aggregate row (SUM=NULL, COUNT=0) must not
    leak: the algebra yields no group at all (the sqlgen HAVING
    COUNT(*) > 0 adaptation — see engine/aggregates.py)."""
    database = paper_database()
    view = parse_view(
        """CREATE VIEW v AS
           SELECT SUM(sale.price) AS total, COUNT(*) AS n
           FROM sale WHERE sale.price > 1000000""",
        database,
    )
    plan = view_plan(view, database)
    result = SQLiteBackend().execute_view_plan(plan, database)
    eager = view.evaluate_eager(database)
    assert len(eager) == 0
    assert len(result) == 0, result.rows


def _retail_warehouses():
    def build():
        return build_retail_database(
            RetailConfig(
                days=6,
                stores=2,
                products=8,
                products_sold_per_day=4,
                transactions_per_product=2,
                start_year=1997,
            )
        )

    db_mem, db_sql = build(), build()
    views = [product_sales_view(1997), product_sales_max_view()]
    mem = Warehouse(db_mem, list(views), backend="memory")
    sql = Warehouse(db_sql, list(views), backend="sqlite")
    return db_mem, db_sql, mem, sql


class TestWarehouseDifferential:
    def test_retail_stream_matches_across_backends(self):
        db_mem, db_sql, mem, sql = _retail_warehouses()
        gen_mem = TransactionGenerator(db_mem, seed=13)
        gen_sql = TransactionGenerator(db_sql, seed=13)
        for step in range(8):
            mem.apply(gen_mem.step())
            sql.apply(gen_sql.step())
            for name in mem.view_names:
                assert_same_bag(
                    sql.summary(name), mem.summary(name),
                    f"step={step} view={name}",
                )
                sql_m, mem_m = sql.maintainer(name), mem.maintainer(name)
                for table in mem_m.aux_relations():
                    assert_same_bag(
                        sql_m.aux_relation(table),
                        mem_m.aux_relation(table),
                        f"step={step} view={name} aux={table}",
                    )

    def test_storage_report_carries_physical_bytes(self):
        __, __, mem, sql = _retail_warehouses()
        name = mem.view_names[0]
        assert mem.storage_report(name).physical_detail_bytes is None
        physical = sql.storage_report(name).physical_detail_bytes
        # dbstat is compiled into the stock python build; if it ever
        # is not, the report degrades to None rather than lying.
        if physical is not None:
            assert physical > 0


class TestSQLiteRollbackParity:
    """A fault at any phase boundary leaves a SQLite-backed warehouse
    exactly at its pre-transaction fingerprint, in lockstep with the
    memory backend."""

    @pytest.mark.parametrize(
        "phase", ["local-reduce", "join-reduce", "aggregate-fold",
                  "aux-apply"]
    )
    def test_fault_rolls_back_both_backends_identically(self, phase):
        db_mem, db_sql, mem, sql = _retail_warehouses()
        gen_mem = TransactionGenerator(db_mem, seed=41)
        gen_sql = TransactionGenerator(db_sql, seed=41)
        mem.apply(gen_mem.step())
        sql.apply(gen_sql.step())
        for warehouse, generator in ((mem, gen_mem), (sql, gen_sql)):
            fingerprints = {
                name: state_fingerprint(warehouse.maintainer(name))
                for name in warehouse.view_names
            }
            victim = warehouse.view_names[-1]
            injector = FaultInjector(warehouse.maintainer(victim))
            injector.arm(phase)
            tx = generator.next_transaction()
            with pytest.raises(InjectedFault):
                warehouse.apply(tx)
            injector.uninstall()
            for name in warehouse.view_names:
                maintainer = warehouse.maintainer(name)
                assert state_fingerprint(maintainer) == (
                    fingerprints[name]
                ), f"view {name} not rolled back after fault in {phase}"
                verify_index_consistency(maintainer)
            # the disarmed transaction then applies cleanly
            generator.database.apply(tx)
            warehouse.apply(tx)
        for name in mem.view_names:
            assert_same_bag(
                sql.summary(name), mem.summary(name), f"phase={phase}"
            )


@given(seed=st.integers(0, 10_000), steps=st.integers(1, 5))
@settings(**SETTINGS)
def test_columnar_maintainer_tracks_memory_and_recomputation(seed, steps):
    """For random GPSJ views and streams, the columnar backend's fused
    kernels must be bit-identical (row multisets, float payloads
    included) to the memory backend and to eager recomputation."""
    scenario = random_scenario(seed)
    memory_m = SelfMaintainer(scenario.view, scenario.database,
                              backend="memory")
    columnar_m = SelfMaintainer(scenario.view, scenario.database,
                                backend="columnar")
    for step in range(steps):
        transaction = scenario.generator.step()
        memory_m.apply(transaction)
        columnar_m.apply(transaction)
        context = f"seed={seed} step={step}"
        _assert_maintainers_match(columnar_m, memory_m, context)
        assert_same_bag(
            columnar_m.current_view(),
            scenario.view.evaluate_eager(scenario.database),
            context,
        )


class TestColumnarRollbackParity:
    """A fault at *every* phase boundary (entry and exit) leaves a
    columnar-backed maintainer exactly at its pre-transaction
    fingerprint, in lockstep with the memory backend — the all-or-
    nothing contract of the column stores' key-snapshot undo."""

    PHASES = ("coalesce", "validate", "local-reduce", "join-reduce",
              "aggregate-fold", "aux-apply")

    @pytest.mark.parametrize("phase", PHASES)
    @pytest.mark.parametrize("when", ["before", "after"])
    def test_fault_rolls_back_columnar_and_memory_identically(
        self, phase, when
    ):
        results = {}
        for backend in ("memory", "columnar"):
            database = build_retail_database(
                RetailConfig(
                    days=6, stores=2, products=8, products_sold_per_day=4,
                    transactions_per_product=2, start_year=1997,
                )
            )
            maintainer = SelfMaintainer(
                product_sales_view(1997), database, backend=backend
            )
            generator = TransactionGenerator(database, seed=47)
            maintainer.apply(generator.step())
            fingerprint = state_fingerprint(maintainer)
            injector = FaultInjector(maintainer)
            injector.arm(phase, when=when)
            tx = generator.next_transaction()
            with pytest.raises(InjectedFault):
                maintainer.apply(tx)
            injector.uninstall()
            assert state_fingerprint(maintainer) == fingerprint, (
                f"{backend} not rolled back after fault {when} {phase}"
            )
            # The disarmed transaction then applies cleanly.
            database.apply(tx)
            maintainer.apply(tx)
            results[backend] = maintainer
        assert_same_bag(
            results["columnar"].current_view(),
            results["memory"].current_view(),
            f"phase={phase} when={when}",
        )
        for table in results["memory"].aux_relations():
            assert_same_bag(
                results["columnar"].aux_relation(table),
                results["memory"].aux_relation(table),
                f"phase={phase} when={when} aux={table}",
            )


def test_columnar_delete_heavy_hot_key_stream_recycles_rows():
    """A delete-heavy stream with hot-key skew (many updates landing on
    one group) must recycle freed row ids: the column stores' physical
    capacity stays bounded by the high-water mark while states remain
    bit-identical to the memory backend."""
    import sys
    from pathlib import Path

    sys.path.insert(
        0, str(Path(__file__).resolve().parent.parent / "benchmarks")
    )
    from harness import SCALES, hotpath_view, make_stream

    from repro.backends.columnar import _ColumnarStore

    database_mem = build_retail_database(SCALES["small"])
    database_col = build_retail_database(SCALES["small"])
    memory_m = SelfMaintainer(
        hotpath_view(1997), database_mem, backend="memory"
    )
    columnar_m = SelfMaintainer(
        hotpath_view(1997), database_col, backend="columnar"
    )
    stream = make_stream(
        database_mem, "delete_heavy", transactions=30, batch=12,
        hot_key_fraction=0.6,
    )
    high_water = 0
    for step, transaction in enumerate(stream):
        memory_m.apply(transaction)
        columnar_m.apply(transaction)
        stores = [
            m.store
            for m in columnar_m._materializations.values()
            if isinstance(m, _ColumnarStore)
        ]
        assert stores, "columnar maintainer has no column stores"
        capacity = sum(store.capacity for store in stores)
        live = sum(len(store) for store in stores)
        high_water = max(high_water, live)
        # Free-list recycling: physical slots never exceed the most
        # rows that were ever simultaneously live (no append-only leak
        # under churn).
        assert capacity <= high_water, (
            f"step={step}: capacity {capacity} exceeds high water "
            f"{high_water} — freed rids are not being recycled"
        )
        _assert_maintainers_match(columnar_m, memory_m, f"step={step}")
    total_free = sum(
        len(m.store.free)
        for m in columnar_m._materializations.values()
        if isinstance(m, _ColumnarStore)
    )
    assert total_free > 0, "delete-heavy stream never freed a row id"


def test_env_variable_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "sqlite")
    assert isinstance(make_backend(None), SQLiteBackend)
    database = paper_database()
    view = parse_view(
        """CREATE VIEW v AS
           SELECT store.city, COUNT(*) AS n FROM sale, store
           WHERE sale.storeid = store.id GROUP BY store.city""",
        database,
    )
    maintainer = SelfMaintainer(view, database)
    assert maintainer.backend.name == "sqlite"
    monkeypatch.delenv("REPRO_BACKEND")
    assert make_backend(None).name == "memory"
