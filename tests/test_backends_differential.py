"""Differential tests: the SQLite backend against the interpreter.

The paper's reductions are relational algebra; nothing about them is
specific to the in-memory interpreter.  These properties pin that down:
for random GPSJ views, random delta streams, and injected faults, a
SQLite-backed maintainer must be row-multiset-identical to both the
memory backend and ground-truth recomputation — including after
rollbacks, where SQLite's native savepoint restore stands in for the
interpreter's row-by-row undo replay.
"""

from hypothesis import HealthCheck, given, settings, strategies as st
import pytest

from repro.backends.base import make_backend
from repro.backends.sqlite import SQLiteBackend
from repro.core.maintenance import SelfMaintainer
from repro.plan.planner import view_plan
from repro.sql import parse_view
from repro.testing.faults import (
    FaultInjector,
    InjectedFault,
    state_fingerprint,
    verify_index_consistency,
)
from repro.warehouse.warehouse import Warehouse
from repro.workloads.random_gen import random_scenario
from repro.workloads.retail import (
    RetailConfig,
    build_retail_database,
    product_sales_max_view,
    product_sales_view,
)
from repro.workloads.streams import TransactionGenerator

from tests.helpers import assert_same_bag, paper_database

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _assert_maintainers_match(sqlite_m, memory_m, context=""):
    assert_same_bag(
        sqlite_m.current_view(), memory_m.current_view(), context
    )
    for table in memory_m.aux_relations():
        assert_same_bag(
            sqlite_m.aux_relation(table),
            memory_m.aux_relation(table),
            f"{context} aux={table}",
        )


@given(seed=st.integers(0, 10_000), steps=st.integers(1, 5))
@settings(**SETTINGS)
def test_sqlite_maintainer_tracks_memory_and_recomputation(seed, steps):
    scenario = random_scenario(seed)
    memory_m = SelfMaintainer(scenario.view, scenario.database,
                              backend="memory")
    sqlite_m = SelfMaintainer(scenario.view, scenario.database,
                              backend="sqlite")
    for step in range(steps):
        transaction = scenario.generator.step()
        memory_m.apply(transaction)
        sqlite_m.apply(transaction)
        context = f"seed={seed} step={step}"
        _assert_maintainers_match(sqlite_m, memory_m, context)
        assert_same_bag(
            sqlite_m.current_view(),
            scenario.view.evaluate_eager(scenario.database),
            context,
        )


@given(seed=st.integers(0, 10_000))
@settings(**SETTINGS)
def test_sqlite_view_evaluation_matches_eager(seed):
    scenario = random_scenario(seed)
    backend = SQLiteBackend()
    plan = view_plan(scenario.view, scenario.database)
    result = backend.execute_view_plan(plan, scenario.database)
    assert_same_bag(
        result,
        scenario.view.evaluate_eager(scenario.database),
        f"seed={seed}",
    )


def test_groupby_free_view_yields_no_row_over_empty_input():
    """SQL's empty-input aggregate row (SUM=NULL, COUNT=0) must not
    leak: the algebra yields no group at all (the sqlgen HAVING
    COUNT(*) > 0 adaptation — see engine/aggregates.py)."""
    database = paper_database()
    view = parse_view(
        """CREATE VIEW v AS
           SELECT SUM(sale.price) AS total, COUNT(*) AS n
           FROM sale WHERE sale.price > 1000000""",
        database,
    )
    plan = view_plan(view, database)
    result = SQLiteBackend().execute_view_plan(plan, database)
    eager = view.evaluate_eager(database)
    assert len(eager) == 0
    assert len(result) == 0, result.rows


def _retail_warehouses():
    def build():
        return build_retail_database(
            RetailConfig(
                days=6,
                stores=2,
                products=8,
                products_sold_per_day=4,
                transactions_per_product=2,
                start_year=1997,
            )
        )

    db_mem, db_sql = build(), build()
    views = [product_sales_view(1997), product_sales_max_view()]
    mem = Warehouse(db_mem, list(views), backend="memory")
    sql = Warehouse(db_sql, list(views), backend="sqlite")
    return db_mem, db_sql, mem, sql


class TestWarehouseDifferential:
    def test_retail_stream_matches_across_backends(self):
        db_mem, db_sql, mem, sql = _retail_warehouses()
        gen_mem = TransactionGenerator(db_mem, seed=13)
        gen_sql = TransactionGenerator(db_sql, seed=13)
        for step in range(8):
            mem.apply(gen_mem.step())
            sql.apply(gen_sql.step())
            for name in mem.view_names:
                assert_same_bag(
                    sql.summary(name), mem.summary(name),
                    f"step={step} view={name}",
                )
                sql_m, mem_m = sql.maintainer(name), mem.maintainer(name)
                for table in mem_m.aux_relations():
                    assert_same_bag(
                        sql_m.aux_relation(table),
                        mem_m.aux_relation(table),
                        f"step={step} view={name} aux={table}",
                    )

    def test_storage_report_carries_physical_bytes(self):
        __, __, mem, sql = _retail_warehouses()
        name = mem.view_names[0]
        assert mem.storage_report(name).physical_detail_bytes is None
        physical = sql.storage_report(name).physical_detail_bytes
        # dbstat is compiled into the stock python build; if it ever
        # is not, the report degrades to None rather than lying.
        if physical is not None:
            assert physical > 0


class TestSQLiteRollbackParity:
    """A fault at any phase boundary leaves a SQLite-backed warehouse
    exactly at its pre-transaction fingerprint, in lockstep with the
    memory backend."""

    @pytest.mark.parametrize(
        "phase", ["local-reduce", "join-reduce", "aggregate-fold",
                  "aux-apply"]
    )
    def test_fault_rolls_back_both_backends_identically(self, phase):
        db_mem, db_sql, mem, sql = _retail_warehouses()
        gen_mem = TransactionGenerator(db_mem, seed=41)
        gen_sql = TransactionGenerator(db_sql, seed=41)
        mem.apply(gen_mem.step())
        sql.apply(gen_sql.step())
        for warehouse, generator in ((mem, gen_mem), (sql, gen_sql)):
            fingerprints = {
                name: state_fingerprint(warehouse.maintainer(name))
                for name in warehouse.view_names
            }
            victim = warehouse.view_names[-1]
            injector = FaultInjector(warehouse.maintainer(victim))
            injector.arm(phase)
            tx = generator.next_transaction()
            with pytest.raises(InjectedFault):
                warehouse.apply(tx)
            injector.uninstall()
            for name in warehouse.view_names:
                maintainer = warehouse.maintainer(name)
                assert state_fingerprint(maintainer) == (
                    fingerprints[name]
                ), f"view {name} not rolled back after fault in {phase}"
                verify_index_consistency(maintainer)
            # the disarmed transaction then applies cleanly
            generator.database.apply(tx)
            warehouse.apply(tx)
        for name in mem.view_names:
            assert_same_bag(
                sql.summary(name), mem.summary(name), f"phase={phase}"
            )


def test_env_variable_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "sqlite")
    assert isinstance(make_backend(None), SQLiteBackend)
    database = paper_database()
    view = parse_view(
        """CREATE VIEW v AS
           SELECT store.city, COUNT(*) AS n FROM sale, store
           WHERE sale.storeid = store.id GROUP BY store.city""",
        database,
    )
    maintainer = SelfMaintainer(view, database)
    assert maintainer.backend.name == "sqlite"
    monkeypatch.delenv("REPRO_BACKEND")
    assert make_backend(None).name == "memory"
