"""The operational observability layer: events, SLOs, doctor, top.

Complements ``test_obs.py`` (metrics/tracing primitives) with the
PR's operational surface: the structured :class:`EventLog`, rolling
:class:`SLOTracker` budgets, ``repro doctor`` self-checks, the
``repro top`` exposition parser/renderer, trace schema v2 (with v1
compatibility), trace-context propagation across the apply queue and
sharded worker processes, and thread-safety of the metrics registry
under concurrent scrape load.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.backends.sharded import ShardedBackend
from repro.obs.health import SLOTracker
from repro.obs.log import (
    EVENT_SCHEMA_VERSION,
    EventLog,
    correlate,
    read_events_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.top import (
    Dashboard,
    histogram_quantile,
    metric_value,
    parse_prometheus,
    shard_shares,
)
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    Trace,
    Tracer,
    format_traceparent,
    parse_traceparent,
    read_trace_jsonl,
    stitch_traces,
)
from repro.engine.deltas import Delta, Transaction
from repro.plan.cost import TableStats
from repro.serving.applyqueue import ApplyQueue, BackpressureError
from repro.serving.server import WarehouseService
from repro.warehouse.doctor import plant_index_corruption, run_doctor
from repro.warehouse.persistence import save_warehouse
from repro.warehouse.warehouse import Warehouse
from repro.workloads.retail import product_sales_view

from tests.helpers import paper_database


def _insert(sale_id, time=1, product=1, store=1, price=10) -> Transaction:
    return Transaction.of(
        Delta.insertion("sale", [(sale_id, time, product, store, price)])
    )


def _apply_body(transaction) -> bytes:
    return json.dumps(
        {
            "deltas": [
                {
                    "table": delta.table,
                    "inserted": [list(r) for r in delta.inserted],
                    "deleted": [list(r) for r in delta.deleted],
                }
                for delta in transaction
            ]
        }
    ).encode()


def _warehouse(**kwargs) -> Warehouse:
    return Warehouse(paper_database(), [product_sales_view(1997)], **kwargs)


class FakeClock:
    """A deterministic, manually advanced clock for window tests."""

    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# Event log.
# ---------------------------------------------------------------------------


class TestEventLog:
    def test_level_floor_drops_cheaply(self):
        log = EventLog(min_level="warn")
        assert log.debug("a") is None
        assert log.info("b") is None
        assert log.warn("c") is not None
        assert log.error("d") is not None
        assert len(log) == 2
        assert log.totals == {"warn": 1, "error": 1}

    def test_unknown_level_rejected(self):
        log = EventLog()
        with pytest.raises(ValueError):
            log.emit("fatal", "boom")
        with pytest.raises(ValueError):
            EventLog(min_level="loud")

    def test_ring_eviction_keeps_totals(self):
        log = EventLog(capacity=4)
        for index in range(10):
            log.info("tick", n=index)
        assert len(log) == 4
        # Totals survive eviction; the ring holds only the newest four.
        assert log.totals == {"info": 10}
        assert [event.fields["n"] for event in log.events()] == [6, 7, 8, 9]

    def test_filters_level_name_prefix_and_limit(self):
        log = EventLog()
        log.debug("txn.begin")
        log.info("txn.commit")
        log.warn("queue.backpressure")
        log.error("txn.rollback")
        assert [e.name for e in log.events(level="warn")] == [
            "queue.backpressure",
            "txn.rollback",
        ]
        assert [e.name for e in log.events(name="txn.")] == [
            "txn.begin",
            "txn.commit",
            "txn.rollback",
        ]
        assert [e.name for e in log.events(limit=1)] == ["txn.rollback"]

    def test_jsonl_round_trip(self, tmp_path):
        clock = FakeClock(123.0)
        log = EventLog(clock=clock)
        log.info("checkpoint.saved", ctx="00-" + "a" * 32 + "-" + "0" * 16 + "-01",
                 path="x.ckpt", rows=7)
        clock.advance(1.0)
        log.error("fault.injected", phase="aux-apply")
        path = tmp_path / "events.jsonl"
        log.write_jsonl(path)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert all(r["schema"] == EVENT_SCHEMA_VERSION for r in records)
        loaded = read_events_jsonl(path)
        assert [(e.seq, e.level, e.name) for e in loaded] == [
            (0, "info", "checkpoint.saved"),
            (1, "error", "fault.injected"),
        ]
        assert loaded[0].fields == {"path": "x.ckpt", "rows": 7}
        assert loaded[0].ts == pytest.approx(123.0)
        assert loaded[1].ctx is None

    def test_correlate_groups_by_trace_id(self):
        log = EventLog()
        ctx_a = format_traceparent("a" * 32, 0)
        ctx_a2 = format_traceparent("a" * 32, 5)
        ctx_b = format_traceparent("b" * 32, 1)
        log.info("one", ctx=ctx_a)
        log.info("two", ctx=ctx_b)
        log.info("three", ctx=ctx_a2)
        log.info("four")
        grouped = correlate(log.events())
        assert [e.name for e in grouped["a" * 32]] == ["one", "three"]
        assert [e.name for e in grouped["b" * 32]] == ["two"]
        assert [e.name for e in grouped[""]] == ["four"]


# ---------------------------------------------------------------------------
# SLO tracking.
# ---------------------------------------------------------------------------


class TestSLOTracker:
    def test_empty_window_is_healthy(self):
        tracker = SLOTracker(clock=FakeClock())
        state = tracker.state()
        assert state["healthy"] and state["requests"] == 0
        assert state["p99_ms"] is None and state["breached"] == []

    def test_availability_breach(self):
        tracker = SLOTracker(availability_target=0.9, clock=FakeClock())
        for __ in range(8):
            tracker.record(True, 1.0)
        tracker.record(False, 1.0)
        tracker.record(False, 1.0)
        state = tracker.state()
        assert state["availability"] == pytest.approx(0.8)
        assert state["breached"] == ["availability"]
        assert not tracker.healthy

    def test_latency_breach(self):
        tracker = SLOTracker(p99_budget_ms=50.0, clock=FakeClock())
        for __ in range(100):
            tracker.record(True, 400.0)
        state = tracker.state()
        assert state["p99_ms"] > 50.0
        assert state["breached"] == ["latency_p99"]

    def test_slow_minute_ages_out(self):
        clock = FakeClock()
        tracker = SLOTracker(
            window_s=60.0, buckets=6, availability_target=0.99, clock=clock
        )
        for __ in range(10):
            tracker.record(False, 500.0)
        assert not tracker.state()["healthy"]
        clock.advance(61.0)  # the bad bucket falls out of the window
        tracker.record(True, 1.0)
        state = tracker.state()
        assert state["healthy"] and state["requests"] == 1


# ---------------------------------------------------------------------------
# Doctor self-checks.
# ---------------------------------------------------------------------------


class TestDoctor:
    def test_healthy_warehouse_exits_zero(self):
        warehouse = _warehouse()
        warehouse.apply(_insert(100))
        report = run_doctor(warehouse)
        assert report.status == "healthy" and report.exit_code == 0
        names = [check.name for check in report.checks]
        assert "index-consistency:product_sales" in names
        assert "stats-drift:product_sales" in names
        assert "event-log" in names
        by_name = {check.name: check for check in report.checks}
        assert by_name["checkpoint-staleness"].status == "skip"
        assert "healthy (exit 0)" in report.render()
        warehouse.close()

    def test_planted_corruption_is_detected(self):
        # Pin the memory backend: only in-process RowIndexes can be
        # planted (sqlite keeps no RowIndex to desynchronize).
        warehouse = _warehouse(backend="memory")
        warehouse.apply(_insert(100))
        assert plant_index_corruption(warehouse)
        report = run_doctor(warehouse)
        assert report.status == "unhealthy" and report.exit_code == 2
        failing = [c for c in report.checks if c.status == "fail"]
        assert failing and failing[0].name.startswith("index-consistency")
        assert report.to_dict()["exit_code"] == 2
        warehouse.close()

    def test_checkpoint_missing_fails(self, tmp_path):
        warehouse = _warehouse()
        report = run_doctor(warehouse, checkpoint_path=tmp_path / "nope.ckpt")
        by_name = {check.name: check for check in report.checks}
        assert by_name["checkpoint-staleness"].status == "fail"
        assert report.exit_code == 2
        warehouse.close()

    def test_checkpoint_fresh_then_stale(self, tmp_path):
        warehouse = _warehouse()
        warehouse.apply(_insert(100))
        path = tmp_path / "wh.ckpt"
        save_warehouse(warehouse, path)
        fresh = run_doctor(warehouse, checkpoint_path=path)
        by_name = {check.name: check for check in fresh.checks}
        assert by_name["checkpoint-staleness"].status == "ok"
        assert fresh.exit_code == 0

        import time as _time

        stale = run_doctor(
            warehouse,
            checkpoint_path=path,
            max_checkpoint_age_s=10.0,
            clock=lambda: _time.time() + 3600.0,
        )
        by_name = {check.name: check for check in stale.checks}
        assert by_name["checkpoint-staleness"].status == "warn"
        assert stale.exit_code == 1 and stale.status == "degraded"
        warehouse.close()

    def test_stats_drift_is_detected(self):
        warehouse = _warehouse(planner="cost")
        warehouse.apply(_insert(100))
        catalog = warehouse.maintainer("product_sales").stats_catalog
        table = next(iter(catalog._providers))
        live = catalog.table_rows(table)
        # Simulate a missed invalidation: the cached cardinality lies.
        catalog._snapshot[table] = TableStats(rows=live + 7)
        report = run_doctor(warehouse)
        by_name = {check.name: check for check in report.checks}
        drift = by_name["stats-drift:product_sales"]
        assert drift.status == "fail"
        assert drift.details["findings"][0]["table"] == table
        assert drift.details["findings"][0]["cached_rows"] == live + 7
        assert report.exit_code == 2
        warehouse.close()

    def test_error_events_degrade_the_report(self):
        warehouse = _warehouse()
        warehouse.events.error("fault.injected", phase="validate")
        report = run_doctor(warehouse)
        by_name = {check.name: check for check in report.checks}
        assert by_name["event-log"].status == "warn"
        assert by_name["event-log"].details["error_events"] == 1
        assert report.exit_code == 1
        warehouse.close()


# ---------------------------------------------------------------------------
# Trace schema v2 and composition.
# ---------------------------------------------------------------------------


class TestTraceSchema:
    def test_traceparent_round_trip(self):
        ctx = format_traceparent("ab" * 16, 7)
        assert parse_traceparent(ctx) == ("ab" * 16, 7)
        for bad in ("", "00-zz", "00-abc-def-01", "garbage"):
            with pytest.raises(ValueError):
                parse_traceparent(bad)

    def test_v2_records_carry_schema_ctx_and_shard(self):
        trace = Trace(3, "txn:v", shard=None)
        with trace.span("shard:1", kind="shard", shard=1):
            trace.instant("probe", kind="plan")
        trace.finish()
        records = trace.to_dicts()
        assert all(r["schema"] == TRACE_SCHEMA_VERSION for r in records)
        assert all(r["ctx"] == trace.hex_id for r in records)
        by_name = {r["name"]: r for r in records}
        assert by_name["shard:1"]["shard"] == 1
        assert by_name["probe"]["shard"] is None

    def test_v1_records_still_load(self, tmp_path):
        # A PR 4 export: no schema, no ctx, no shard fields.
        v1 = [
            {
                "trace": 0, "span": 0, "parent": None, "name": "txn:v",
                "kind": "transaction", "phase": "txn:v", "start_ms": 0.0,
                "duration_ms": 5.0, "rows_in": None, "rows_out": None,
                "index_probes": 0, "cache_hit": False, "error": False,
                "attrs": {"status": "ok"},
            },
            {
                "trace": 0, "span": 1, "parent": 0, "name": "coalesce",
                "kind": "phase", "phase": "coalesce", "start_ms": 0.1,
                "duration_ms": 1.0, "rows_in": 4, "rows_out": 2,
                "index_probes": 0, "cache_hit": False, "error": False,
                "attrs": {},
            },
        ]
        path = tmp_path / "v1.jsonl"
        path.write_text("\n".join(json.dumps(r) for r in v1) + "\n")
        traces = read_trace_jsonl(path)
        assert len(traces) == 1
        trace = traces[0]
        assert trace.label == "txn:v" and trace.status == "ok"
        assert [s.shard for s in trace.spans] == [None, None]
        # Re-export stamps the current schema.
        assert trace.to_dicts()[0]["schema"] == TRACE_SCHEMA_VERSION

    def test_v2_jsonl_round_trip_groups_by_ctx(self, tmp_path):
        tracer = Tracer()
        for label in ("txn:a", "txn:b"):
            trace = tracer.begin(label)
            with trace.span("coalesce", kind="phase"):
                pass
            tracer.finish(trace)
        path = tmp_path / "v2.jsonl"
        tracer.export_jsonl(path)
        loaded = read_trace_jsonl(path)
        assert sorted(t.label for t in loaded) == ["txn:a", "txn:b"]
        assert all(len(t.spans) == 2 for t in loaded)
        assert {t.hex_id for t in loaded} == {
            t.hex_id for t in tracer.traces
        }

    def test_graft_remaps_ids_and_labels_shards(self):
        parent = Trace(0, "stage")
        child = Trace(0, "shard-work", kind="shard")
        with child.span("inner", kind="plan"):
            pass
        child.finish()
        with parent.span("broadcast", kind="plan") as anchor:
            id_map = parent.graft(child.to_dicts(), shard=1)
        parent.finish()
        ids = {span.span_id for span in parent.spans}
        assert len(ids) == len(parent.spans)  # no collisions after remap
        grafted_root = parent.spans[id_map[0]]
        assert grafted_root.parent_id == anchor.span_id
        assert all(
            parent.spans[new].shard == 1 for new in id_map.values()
        )
        # Inner parent/child structure is preserved under new ids.
        inner = parent.spans[id_map[1]]
        assert inner.parent_id == grafted_root.span_id

    def test_stitch_traces_builds_one_tree(self):
        tracer = Tracer()
        request = tracer.begin("http:apply", kind="request")
        batch = tracer.begin(
            "apply-batch", kind="queue", parent=request.context()
        )
        txn = tracer.begin("txn:v", parent=batch.context())
        tracer.finish(txn)
        tracer.finish(batch)
        tracer.finish(request)
        roots = stitch_traces(tracer.traces)
        assert len(roots) == 1
        tree = roots[0]
        assert tree.root.name == "http:apply"
        names = [span.name for span in tree.spans]
        assert "apply-batch" in names and "txn:v" in names
        ids = {span.span_id for span in tree.spans}
        orphans = [
            s for s in tree.spans
            if s.parent_id is not None and s.parent_id not in ids
        ]
        assert not orphans
        # Stitching copies: the originals keep their own roots.
        assert len(tracer.traces) == 3

    def test_parent_linked_trace_is_always_sampled(self):
        tracer = Tracer(sample_every=1000)
        tracer.finish(tracer.begin("warmup"))  # consumes the head sample
        ctx = format_traceparent("c" * 32, 0)
        linked = tracer.begin("child", parent=ctx)
        assert linked is not None and linked.sampled
        shadow = tracer.begin("unlinked")
        assert shadow is not None and not shadow.sampled
        tracer.finish(shadow)  # clean shadow: dropped
        tracer.finish(linked)
        assert [t.label for t in tracer.traces] == ["warmup", "child"]


# ---------------------------------------------------------------------------
# Metrics registry thread safety.
# ---------------------------------------------------------------------------


class TestMetricsThreadSafety:
    def test_concurrent_writers_and_scrapes_lose_nothing(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total")
        labeled = registry.counter("shard_rows_total", shard="0")
        hist = registry.histogram("latency_ms", (1.0, 10.0, 100.0))
        threads, writers, per_writer = [], 6, 400
        stop = threading.Event()

        def write():
            for index in range(per_writer):
                counter.inc()
                labeled.inc(2)
                hist.observe(float(index % 200))

        def scrape():
            while not stop.is_set():
                registry.render_prometheus()
                registry.snapshot()
                merged = MetricsRegistry()
                merged.merge(registry)

        for __ in range(writers):
            threads.append(threading.Thread(target=write))
        scrapers = [threading.Thread(target=scrape) for __ in range(2)]
        for thread in scrapers:
            thread.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        for thread in scrapers:
            thread.join()

        assert counter.value == writers * per_writer
        assert labeled.value == writers * per_writer * 2
        assert hist.count == writers * per_writer
        assert sum(hist.bucket_counts) == hist.count
        merged = MetricsRegistry()
        merged.merge(registry)
        assert merged.counter("ops_total").value == counter.value


# ---------------------------------------------------------------------------
# Trace propagation across the apply queue and sharded workers.
# ---------------------------------------------------------------------------


class TestQueuePropagation:
    def test_batch_parents_first_request_and_links_rest(self):
        warehouse = _warehouse(tracer=Tracer())
        stores: dict = {}
        queue = ApplyQueue(
            warehouse, stores, tracer=warehouse.tracer,
            events=warehouse.events,
        )
        ctx_a = format_traceparent("a" * 32, 1)
        ctx_b = format_traceparent("b" * 32, 2)
        queue.submit(_insert(100), ctx=ctx_a)
        queue.submit(_insert(101, time=2), ctx=ctx_b)
        queue.start()
        try:
            queue.flush()
        finally:
            queue.stop()
            warehouse.close()
        batches = [
            t for t in warehouse.tracer.traces if t.label == "apply-batch"
        ]
        assert len(batches) == 1
        batch = batches[0]
        assert batch.root.attrs["parent_ctx"] == ctx_a
        assert batch.root.attrs["links"] == [ctx_b]
        assert batch.root.attrs["txns"] == 2
        # The maintainer transaction joined the batch tree via the
        # worker thread's ambient context.
        txns = [
            t for t in warehouse.tracer.traces
            if t.label.startswith("txn:")
        ]
        assert txns and all(
            parse_traceparent(t.root.attrs["parent_ctx"])[0] == batch.hex_id
            for t in txns
        )
        applied = warehouse.events.events(name="batch.applied")
        assert applied and applied[-1].fields["txns"] == 2

    def test_backpressure_emits_event(self):
        events = EventLog()
        queue = ApplyQueue(None, {}, events=events, max_pending=1)
        queue.submit(_insert(100))
        with pytest.raises(BackpressureError):
            queue.submit(_insert(101))
        warned = events.events(name="queue.backpressure")
        assert warned and warned[-1].fields["max_pending"] == 1


def _span_names(tracer, kind: str) -> set[str]:
    return {
        span.name
        for trace in tracer.traces
        for span in trace.spans
        if span.kind == kind
    }


class TestShardedPropagation:
    def test_serial_and_parallel_trace_the_same_maintenance(self):
        """Differential: both execution modes must trace the same
        transaction structure (same phases, overlapping plan work) —
        only the shard-fanout shape may differ (the serial runner
        collapses replicated stages into one ``replicated`` span)."""
        transactions = [_insert(100), _insert(101, time=2, product=2)]
        phases: list[set[str]] = []
        plans: list[set[str]] = []
        for parallel in (False, True):
            backend = ShardedBackend(n_shards=2, parallel=parallel)
            warehouse = _warehouse(
                tracer=Tracer(), backend=backend, planner="static"
            )
            try:
                for transaction in transactions:
                    warehouse.apply(transaction)
                phases.append(_span_names(warehouse.tracer, "phase"))
                plans.append(_span_names(warehouse.tracer, "plan"))
                shard_names = _span_names(warehouse.tracer, "shard")
                assert shard_names & {"shard:0", "shard:1", "replicated"}
            finally:
                warehouse.close()
        assert phases[0] == phases[1]
        assert phases[0]  # the differential is vacuous if nothing traced
        assert plans[0] & plans[1]  # the routed stages run identically

    def test_parallel_worker_spans_join_the_transaction_tree(self):
        backend = ShardedBackend(n_shards=2, parallel=True)
        warehouse = _warehouse(tracer=Tracer(), backend=backend)
        try:
            warehouse.apply(_insert(100))
            trace = warehouse.tracer.last
            assert trace is not None
            shard_spans = [s for s in trace.spans if s.kind == "shard"]
            assert shard_spans, "no worker spans grafted into the trace"
            assert {s.shard for s in shard_spans} <= {0, 1}
            ids = {span.span_id for span in trace.spans}
            assert all(
                s.parent_id in ids
                for s in trace.spans
                if s.parent_id is not None
            )
            # Worker-side plan spans carry their shard label through
            # the pipe round trip.
            inner = [
                s for s in trace.spans
                if s.kind == "plan" and s.shard is not None
            ]
            assert inner
        finally:
            warehouse.close()


# ---------------------------------------------------------------------------
# Serving: one request, one connected tree.
# ---------------------------------------------------------------------------


class TestServingConnectedTree:
    def test_served_apply_renders_one_connected_tree(self):
        backend = ShardedBackend(n_shards=2, parallel=True)
        warehouse = _warehouse(tracer=Tracer(), backend=backend)
        service = WarehouseService(warehouse)
        service.start()
        try:
            status, __, __ = service.apply(
                _apply_body(_insert(100, price=30)), mode="sync"
            )
            assert status == 200
        finally:
            service.stop()
            warehouse.close()
        roots = [
            tree for tree in stitch_traces(warehouse.tracer.traces)
            if tree.root.name == "http:apply"
        ]
        assert len(roots) == 1
        tree = roots[0]
        names = [span.name for span in tree.spans]
        assert "apply-batch" in names
        assert any(name.startswith("txn:") for name in names)
        assert any(span.kind == "shard" for span in tree.spans)
        ids = {span.span_id for span in tree.spans}
        assert all(
            span.parent_id in ids
            for span in tree.spans
            if span.parent_id is not None
        ), "stitched tree has orphan spans"
        rendered = tree.render()
        assert "http:apply" in rendered and "apply-batch" in rendered

    def test_events_correlate_with_the_request_trace(self):
        warehouse = _warehouse(tracer=Tracer())
        service = WarehouseService(warehouse)
        service.start()
        try:
            service.apply(_apply_body(_insert(100)), mode="sync")
        finally:
            service.stop()
            warehouse.close()
        request = next(
            t for t in warehouse.tracer.traces if t.label == "http:apply"
        )
        grouped = correlate(warehouse.events.events())
        batch_hex = next(
            t.hex_id for t in warehouse.tracer.traces
            if t.label == "apply-batch"
        )
        assert any(
            e.name == "batch.applied" for e in grouped.get(batch_hex, [])
        )
        # And the batch trace itself descends from the request.
        batch = next(
            t for t in warehouse.tracer.traces if t.label == "apply-batch"
        )
        assert (
            parse_traceparent(batch.root.attrs["parent_ctx"])[0]
            == request.hex_id
        )

    def test_healthz_and_export_endpoints(self):
        warehouse = _warehouse(tracer=Tracer())
        service = WarehouseService(warehouse)
        service.start()
        try:
            service.apply(_apply_body(_insert(100)), mode="sync")
            status, __, payload = service.healthz()
            body = json.loads(payload)
            assert status == 200 and body["status"] == "ok"
            assert body["slo"]["healthy"] is True
            assert body["lag_transactions"] == 0

            status, __, payload = service.export_events()
            events_body = json.loads(payload)
            assert status == 200
            assert events_body["schema"] == EVENT_SCHEMA_VERSION
            assert any(
                e["name"] == "batch.applied" for e in events_body["events"]
            )
            with pytest.raises(Exception) as excinfo:
                service.export_events(level="loud")
            assert getattr(excinfo.value, "status", None) == 400

            status, ctype, payload = service.export_traces()
            assert status == 200 and "jsonl" in ctype
            records = [
                json.loads(line)
                for line in payload.decode().splitlines()
                if line
            ]
            assert any(r["name"] == "http:apply" for r in records)
            status, __, payload = service.export_traces(fmt="text")
            assert status == 200 and b"apply-batch" in payload
        finally:
            service.stop()
            warehouse.close()


# ---------------------------------------------------------------------------
# The top dashboard (offline: parser + renderer only).
# ---------------------------------------------------------------------------


EXPOSITION = """\
# HELP repro_serving_txns_applied_total txns
# TYPE repro_serving_txns_applied_total counter
repro_serving_txns_applied_total 40
repro_serving_batches_total 10
repro_serving_reads_total 100
repro_serving_queue_depth 3
repro_serving_lag_transactions 2
repro_serving_version 10
repro_serving_read_latency_ms_bucket{le="1"} 50
repro_serving_read_latency_ms_bucket{le="10"} 90
repro_serving_read_latency_ms_bucket{le="+Inf"} 100
repro_serving_read_latency_ms_count 100
repro_shard_routed_rows_total{shard="0"} 30
repro_shard_routed_rows_total{shard="1"} 10
repro_maintenance_events_total{event="replans"} 4
repro_maintenance_events_total{event="recomputations"} 1
with_escapes{name="a\\"b\\\\c\\nd"} 1
"""


class TestTopParsing:
    def test_parse_prometheus(self):
        metrics = parse_prometheus(EXPOSITION)
        assert metric_value(metrics, "repro_serving_txns_applied_total") == 40
        assert metric_value(metrics, "missing", default=7.0) == 7.0
        assert (
            metric_value(
                metrics, "repro_maintenance_events_total", event="replans"
            )
            == 4
        )
        # Label-subset sum: no label filter sums every series.
        assert metric_value(metrics, "repro_maintenance_events_total") == 5
        labels = metrics["with_escapes"][0][0]
        assert labels["name"] == 'a"b\\c\nd'

    def test_histogram_quantile(self):
        metrics = parse_prometheus(EXPOSITION)
        p50 = histogram_quantile(
            metrics, "repro_serving_read_latency_ms", 0.5
        )
        assert p50 == pytest.approx(1.0)
        p99 = histogram_quantile(
            metrics, "repro_serving_read_latency_ms", 0.99
        )
        # 99th request sits in the overflow bucket: report the top
        # finite bound.
        assert p99 == pytest.approx(10.0)
        assert histogram_quantile(metrics, "absent", 0.5) is None

    def test_shard_shares(self):
        metrics = parse_prometheus(EXPOSITION)
        shares = shard_shares(metrics)
        assert shares == {"0": pytest.approx(0.75), "1": pytest.approx(0.25)}
        assert shard_shares({}) == {}

    def test_render_rates_between_frames(self):
        dashboard = Dashboard("http://example.invalid")
        metrics = parse_prometheus(EXPOSITION)
        health = {
            "status": "ok",
            "slo": {"availability": 1.0, "p99_ms": 2.0, "breached": []},
        }
        first = dashboard.render(metrics, health, interval=2.0)
        assert "status=ok" in first
        assert "0.0 txn/s" in first  # no previous frame yet
        later = parse_prometheus(
            EXPOSITION.replace(
                "repro_serving_txns_applied_total 40",
                "repro_serving_txns_applied_total 60",
            )
        )
        second = dashboard.render(later, health, interval=2.0)
        assert "10.0 txn/s" in second  # (60-40)/2s
        assert "shard   0   75.0%" in second
        assert "breached=none" in second
