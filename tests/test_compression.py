"""Tests for local reduction and smart duplicate compression (Alg. 3.1)."""

from repro.core.compression import attribute_roles, plan_compression
from repro.core.view import JoinCondition, make_view
from repro.engine.aggregates import AggregateFunction
from repro.engine.expressions import Column
from repro.engine.operators import AggregateItem, GroupByItem
from repro.workloads.retail import product_sales_max_view, product_sales_view


class TestAttributeRoles:
    def test_paper_view_sale_roles(self):
        view = product_sales_view(1997)
        kept, roles = attribute_roles(view, "sale")
        assert kept == ("timeid", "productid", "price")
        assert roles["timeid"] == {"join"}
        assert roles["price"] == {"csmas-sum"}

    def test_paper_view_time_roles(self):
        view = product_sales_view(1997)
        kept, roles = attribute_roles(view, "time")
        # id (join) and month (group-by); year is a local condition and
        # is NOT kept (local reduction removes it).
        assert kept == ("id", "month")
        assert roles["month"] == {"group-by"}

    def test_non_csmas_role(self):
        view = product_sales_max_view()
        __, roles = attribute_roles(view, "sale")
        assert "non-csmas" in roles["price"]
        assert "csmas-sum" in roles["price"]

    def test_append_only_turns_extrema_csmas(self):
        view = product_sales_max_view()
        __, roles = attribute_roles(view, "sale", append_only=True)
        assert "non-csmas" not in roles["price"]
        assert "csmas-max" in roles["price"]


class TestCompressionPlans:
    def test_paper_sale_plan(self):
        # The saledtl of Section 1.1: group on the FKs, fold the price,
        # add COUNT(*).
        plan = plan_compression(product_sales_view(1997), "sale", key="id")
        assert plan.pinned == ("timeid", "productid")
        assert plan.folded_sums == ("price",)
        assert plan.include_count
        assert not plan.degenerate
        assert plan.is_compressed

    def test_paper_time_plan_degenerates(self):
        # timedtl keeps (id, month): the key is a join attribute, so the
        # view degenerates to PSJ with no aggregates.
        plan = plan_compression(product_sales_view(1997), "time", key="id")
        assert plan.degenerate
        assert plan.pinned == ("id", "month")
        assert plan.folded_sums == ()
        assert not plan.include_count

    def test_max_view_pins_price(self):
        # Section 3.2's product_sales_max: price feeds MAX (non-CSMAS),
        # so it stays a regular attribute and SUM is not folded.
        plan = plan_compression(product_sales_max_view(), "sale", key="id")
        assert plan.pinned == ("productid", "price")
        assert plan.folded_sums == ()
        assert plan.include_count

    def test_distinct_attribute_is_pinned(self):
        view = product_sales_view(1997)
        plan = plan_compression(view, "product", key="id")
        # brand feeds COUNT(DISTINCT brand): pinned, and the key is a
        # join attribute, so the plan degenerates.
        assert plan.degenerate
        assert plan.pinned == ("id", "brand")

    def test_count_only_attribute_is_dropped(self):
        # COUNT(a) folds entirely into COUNT(*): `a` is not stored.
        view = make_view(
            "v",
            ("sale",),
            [
                GroupByItem(Column("productid", "sale")),
                AggregateItem(
                    AggregateFunction.COUNT, Column("price", "sale"), alias="c"
                ),
            ],
        )
        plan = plan_compression(view, "sale", key="id")
        assert plan.pinned == ("productid",)
        assert plan.folded_sums == ()
        assert plan.dropped == ("price",)
        assert plan.include_count

    def test_group_by_on_key_degenerates(self):
        view = make_view(
            "v",
            ("sale",),
            [
                GroupByItem(Column("id", "sale")),
                AggregateItem(
                    AggregateFunction.SUM, Column("price", "sale"), alias="s"
                ),
            ],
        )
        plan = plan_compression(view, "sale", key="id")
        assert plan.degenerate
        assert plan.pinned == ("id", "price")

    def test_count_alias_collision_avoided(self):
        view = make_view(
            "v",
            ("sale",),
            [
                GroupByItem(Column("cnt", "sale")),
                AggregateItem(AggregateFunction.COUNT, None, alias="n"),
            ],
        )
        plan = plan_compression(view, "sale", key="id")
        assert plan.count_alias != "cnt"

    def test_append_only_folds_extrema(self):
        plan = plan_compression(
            product_sales_max_view(), "sale", key="id", append_only=True
        )
        assert plan.pinned == ("productid",)
        assert plan.folded_sums == ("price",)
        assert plan.folded_maxs == ("price",)
        assert plan.folded_mins == ()

    def test_projection_items_order_and_aliases(self):
        plan = plan_compression(product_sales_view(1997), "sale", key="id")
        items = plan.projection_items()
        assert [i.output_name for i in items] == [
            "timeid", "productid", "sum_price", "cnt",
        ]
        assert items[2].func is AggregateFunction.SUM
        assert items[3].is_count_star


class TestPaperTables3And4:
    """Tables 3 and 4: the sale auxiliary view before and after folding."""

    def test_table3_shape(self):
        # Table 3: (timeid, productid, price, COUNT(*)) — price pinned
        # when it also feeds a non-CSMAS; modelled by adding MAX(price).
        view = make_view(
            "v",
            ("sale",),
            [
                GroupByItem(Column("timeid", "sale")),
                GroupByItem(Column("productid", "sale")),
                AggregateItem(
                    AggregateFunction.MAX, Column("price", "sale"), alias="mx"
                ),
                AggregateItem(
                    AggregateFunction.SUM, Column("price", "sale"), alias="s"
                ),
            ],
        )
        plan = plan_compression(view, "sale", key="id")
        assert plan.pinned == ("timeid", "productid", "price")
        assert plan.include_count

    def test_table4_shape(self):
        # Table 4: (timeid, productid, SUM(price), COUNT(*)).
        plan = plan_compression(product_sales_view(1997), "sale", key="id")
        names = [i.output_name for i in plan.projection_items()]
        assert names == ["timeid", "productid", "sum_price", "cnt"]
