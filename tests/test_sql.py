"""Tests for the SQL lexer and GPSJ parser."""

import pytest

from repro.engine.aggregates import AggregateFunction
from repro.engine.expressions import Column, Comparison, InList
from repro.engine.operators import AggregateItem, GroupByItem
from repro.core.view import JoinCondition
from repro.sql.lexer import SqlLexError, tokenize
from repro.sql.parser import SqlParseError, parse_view

from tests.helpers import assert_same_bag, paper_database


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select From WHERE")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_preserve_case(self):
        token = tokenize("TotalPrice")[0]
        assert token.kind == "IDENT"
        assert token.value == "TotalPrice"

    def test_numbers(self):
        tokens = tokenize("42 3.5")
        assert tokens[0].value == 42
        assert tokens[1].value == 3.5

    def test_strings_with_escapes(self):
        token = tokenize("'o''brien'")[0]
        assert token.kind == "STRING"
        assert token.value == "o'brien"

    def test_unterminated_string(self):
        with pytest.raises(SqlLexError, match="unterminated"):
            tokenize("'oops")

    def test_operators(self):
        values = [t.value for t in tokenize("<= >= <> != = < >")[:-1]]
        assert values == ["<=", ">=", "<>", "!=", "=", "<", ">"]

    def test_dotted_reference_tokens(self):
        kinds = [t.kind for t in tokenize("time.month")[:-1]]
        assert kinds == ["IDENT", "PUNCT", "IDENT"]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- comment\n x")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "x"]

    def test_unknown_character(self):
        with pytest.raises(SqlLexError, match="unexpected"):
            tokenize("SELECT @")

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "EOF"


PAPER_SQL = """
CREATE VIEW product_sales AS
SELECT time.month, SUM(price) AS TotalPrice, COUNT(*) AS TotalCount,
       COUNT(DISTINCT brand) AS DifferentBrands
FROM sale, time, product
WHERE time.year = 1997 AND sale.timeid = time.id AND sale.productid = product.id
GROUP BY time.month
"""


class TestParser:
    def test_paper_view_parses(self):
        view = parse_view(PAPER_SQL, paper_database())
        assert view.name == "product_sales"
        assert view.tables == ("sale", "time", "product")
        assert set(view.joins) == {
            JoinCondition("sale", "timeid", "time", "id"),
            JoinCondition("sale", "productid", "product", "id"),
        }
        assert view.selection == (
            Comparison("=", Column("year", "time"), Literal_(1997)),
        )
        assert view.projection[0] == GroupByItem(Column("month", "time"))
        assert view.projection[1] == AggregateItem(
            AggregateFunction.SUM, Column("price", "sale"), alias="TotalPrice"
        )
        assert view.projection[3].distinct

    def test_unqualified_columns_resolved(self):
        view = parse_view(PAPER_SQL, paper_database())
        # `price` and `brand` were unqualified in the SQL.
        assert view.projection[1].column.qualifier == "sale"
        assert view.projection[3].column.qualifier == "product"

    def test_bare_select_needs_name(self):
        with pytest.raises(SqlParseError, match="view name"):
            parse_view("SELECT COUNT(*) FROM sale", paper_database())

    def test_bare_select_with_name(self):
        view = parse_view(
            "SELECT COUNT(*) AS c FROM sale", paper_database(), name="n"
        )
        assert view.name == "n"

    def test_ambiguous_column_rejected(self):
        with pytest.raises(SqlParseError, match="ambiguous"):
            parse_view(
                "SELECT id, COUNT(*) AS c FROM sale, time "
                "WHERE sale.timeid = time.id GROUP BY id",
                paper_database(),
                name="v",
            )

    def test_unknown_table(self):
        with pytest.raises(SqlParseError, match="unknown table"):
            parse_view("SELECT COUNT(*) AS c FROM ghosts", paper_database(), name="v")

    def test_unknown_column(self):
        with pytest.raises(SqlParseError, match="unknown column"):
            parse_view("SELECT COUNT(colour) AS c FROM sale", paper_database(), name="v")

    def test_group_by_must_match_select(self):
        with pytest.raises(SqlParseError, match="GROUP BY"):
            parse_view(
                "SELECT month, COUNT(*) AS c FROM time GROUP BY year",
                paper_database(),
                name="v",
            )

    def test_non_key_join_rejected(self):
        with pytest.raises(SqlParseError, match="join on a key"):
            parse_view(
                "SELECT COUNT(*) AS c FROM sale, time WHERE sale.timeid = time.month",
                paper_database(),
                name="v",
            )

    def test_join_orientation_detected(self):
        # The key side may appear on the left.
        view = parse_view(
            "SELECT COUNT(*) AS c FROM sale, time WHERE time.id = sale.timeid",
            paper_database(),
            name="v",
        )
        assert view.joins == (JoinCondition("sale", "timeid", "time", "id"),)

    def test_in_list_condition(self):
        view = parse_view(
            "SELECT COUNT(*) AS c FROM time WHERE month IN (1, 2, 3)",
            paper_database(),
            name="v",
        )
        condition = view.selection[0]
        assert isinstance(condition, InList)
        assert condition.values == (1, 2, 3)

    def test_string_literal_condition(self):
        view = parse_view(
            "SELECT COUNT(*) AS c FROM product WHERE brand = 'acme'",
            paper_database(),
            name="v",
        )
        assert len(view.evaluate(paper_database())) == 1

    def test_having_clause(self):
        view = parse_view(
            "SELECT productid, COUNT(*) AS c FROM sale GROUP BY productid "
            "HAVING c >= 2 AND NOT c > 100",
            paper_database(),
            name="v",
        )
        result = view.evaluate(paper_database())
        assert all(row[1] >= 2 for row in result)

    def test_count_star_distinct_rejected(self):
        with pytest.raises(SqlParseError):
            parse_view(
                "SELECT COUNT(DISTINCT *) AS c FROM sale",
                paper_database(),
                name="v",
            )

    def test_sum_star_rejected(self):
        with pytest.raises(SqlParseError):
            parse_view("SELECT SUM(*) AS s FROM sale", paper_database(), name="v")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlParseError, match="trailing"):
            parse_view(
                "SELECT COUNT(*) AS c FROM sale extra",
                paper_database(),
                name="v",
            )

    def test_arithmetic_in_where(self):
        view = parse_view(
            "SELECT COUNT(*) AS c FROM sale WHERE price * 2 > 10",
            paper_database(),
            name="v",
        )
        expected = parse_view(
            "SELECT COUNT(*) AS c FROM sale WHERE price > 5",
            paper_database(),
            name="v",
        )
        assert_same_bag(
            view.evaluate(paper_database()), expected.evaluate(paper_database())
        )

    def test_parsed_equals_programmatic(self):
        from repro.workloads.retail import product_sales_view

        database = paper_database()
        parsed = parse_view(PAPER_SQL, database)
        built = product_sales_view(1997)
        assert_same_bag(parsed.evaluate(database), built.evaluate(database))

    def test_roundtrip_through_to_sql(self):
        database = paper_database()
        view = parse_view(PAPER_SQL, database)
        reparsed = parse_view(view.to_sql(), database)
        assert_same_bag(view.evaluate(database), reparsed.evaluate(database))


def Literal_(value):
    from repro.engine.expressions import Literal

    return Literal(value)
