"""Tests for the append-only (old detail data) extension of Section 4."""

import pytest

from repro.core.derivation import derive_auxiliary_views
from repro.core.maintenance import SelfMaintainer, SelfMaintenanceError
from repro.core.view import JoinCondition, make_view
from repro.engine.aggregates import AggregateFunction
from repro.engine.deltas import Delta, Transaction
from repro.engine.expressions import Column
from repro.engine.operators import AggregateItem, GroupByItem
from repro.workloads.retail import product_sales_max_view

from tests.helpers import assert_same_bag, paper_database


def minmax_view():
    return make_view(
        "price_range",
        ("sale", "time"),
        [
            GroupByItem(Column("month", "time")),
            AggregateItem(AggregateFunction.MIN, Column("price", "sale"), alias="lo"),
            AggregateItem(AggregateFunction.MAX, Column("price", "sale"), alias="hi"),
            AggregateItem(AggregateFunction.AVG, Column("price", "sale"), alias="mean"),
            AggregateItem(AggregateFunction.COUNT, None, alias="n"),
        ],
        joins=[JoinCondition("sale", "timeid", "time", "id")],
    )


class TestAppendOnlyDerivationEffects:
    def test_aux_view_is_smaller_than_regular_mode(self):
        database = paper_database()
        regular = derive_auxiliary_views(minmax_view(), database)
        append = derive_auxiliary_views(
            minmax_view(), database, append_only=True
        )
        regular_fields = len(regular.for_table("sale").output_schema())
        append_rows = append.materialize(database)["sale"]
        regular_rows = regular.materialize(database)["sale"]
        # Folding MIN/MAX removes `price` from the grouping key: fewer
        # groups (and in general far fewer rows).
        assert len(append_rows) <= len(regular_rows)
        assert "price" not in [
            a.name for a in append.for_table("sale").output_schema()
        ]
        assert regular_fields > 0  # sanity

    def test_max_only_view_needs_no_detail(self):
        aux = derive_auxiliary_views(
            product_sales_max_view(), paper_database(), append_only=True
        )
        assert aux.tables == ()


class TestAppendOnlyMaintenance:
    def insert(self, rows):
        return Transaction.of(Delta.insertion("sale", rows))

    def test_insert_stream_stays_exact(self):
        database = paper_database()
        view = minmax_view()
        maintainer = SelfMaintainer(view, database, append_only=True)
        batches = [
            [(100, 1, 1, 1, 3)],       # new global minimum in month 1
            [(101, 3, 2, 1, 700)],     # new maximum in month 2
            [(102, 2, 3, 1, 10), (103, 2, 3, 1, 20)],
        ]
        for rows in batches:
            transaction = self.insert(rows)
            database.apply(transaction)
            maintainer.apply(transaction)
            assert_same_bag(maintainer.current_view(), view.evaluate(database))

    def test_new_group_from_insertions(self):
        database = paper_database()
        view = minmax_view()
        maintainer = SelfMaintainer(view, database, append_only=True)
        # time 3 is month 2 (already present); add month via new time row.
        transaction = Transaction.of(
            Delta.insertion("time", [(10, 5, 6, 1997)]),
            Delta.insertion("sale", [(110, 10, 1, 1, 42)]),
        )
        database.apply(transaction)
        maintainer.apply(transaction)
        assert_same_bag(maintainer.current_view(), view.evaluate(database))
        months = {row[0] for row in maintainer.current_view()}
        assert 6 in months

    def test_deletions_are_refused(self):
        database = paper_database()
        maintainer = SelfMaintainer(
            minmax_view(), database, append_only=True
        )
        with pytest.raises(SelfMaintenanceError, match="append-only"):
            maintainer.apply(
                Transaction.of(Delta.deletion("sale", [(1, 1, 1, 1, 10)]))
            )

    def test_deletions_on_unrelated_tables_allowed(self):
        database = paper_database()
        maintainer = SelfMaintainer(
            minmax_view(), database, append_only=True
        )
        fresh_store = (2, "2 High St", "Aarhus", "Denmark", "bob")
        insert = Transaction.of(Delta.insertion("store", [fresh_store]))
        database.apply(insert)
        maintainer.apply(insert)
        delete = Transaction.of(Delta.deletion("store", [fresh_store]))
        database.apply(delete)
        maintainer.apply(delete)  # store is outside the view

    def test_eliminated_root_with_folded_max(self):
        database = paper_database()
        view = product_sales_max_view()
        maintainer = SelfMaintainer(view, database, append_only=True)
        assert "sale" in maintainer.eliminated_tables
        transaction = self.insert([(120, 1, 1, 1, 999), (121, 1, 3, 1, 1)])
        database.apply(transaction)
        maintainer.apply(transaction)
        assert_same_bag(maintainer.current_view(), view.evaluate(database))
        by_product = {row[0]: row for row in maintainer.current_view()}
        assert by_product[1][1] == 999
