"""Tests for the incrementally-maintained hash indexes on auxiliary views."""

from repro.core.derivation import derive_auxiliary_views
from repro.core.maintenance import SelfMaintainer, make_materialization
from repro.engine.deltas import Delta, Transaction
from repro.workloads.retail import product_sales_view

from tests.helpers import assert_same_bag, paper_database


def sale_materialization(database):
    aux = derive_auxiliary_views(product_sales_view(1997), database)
    sale = aux.for_table("sale")
    materialization = make_materialization(sale)
    materialization.load(aux.materialize(database)["sale"])
    return materialization


def time_materialization(database):
    aux = derive_auxiliary_views(product_sales_view(1997), database)
    time = aux.for_table("time")
    materialization = make_materialization(time)
    materialization.load(aux.materialize(database)["time"])
    return materialization


class TestCompressedIndex:
    def test_rows_matching_equals_scan(self):
        database = paper_database()
        materialization = sale_materialization(database)
        relation = materialization.relation()
        for value in {row[0] for row in relation}:
            indexed = sorted(
                materialization.rows_matching("sale.timeid", {value})
            )
            scanned = sorted(r for r in relation if r[0] == value)
            assert indexed == scanned

    def test_index_tracks_inserts_and_group_creation(self):
        database = paper_database()
        materialization = sale_materialization(database)
        materialization.rows_matching("sale.timeid", {1})  # build index
        materialization.apply([(900, 3, 3, 1, 4)], sign=+1)  # new group
        rows = materialization.rows_matching("sale.timeid", {3})
        assert (3, 3, 4, 1) in rows

    def test_index_tracks_group_death(self):
        database = paper_database()
        materialization = sale_materialization(database)
        materialization.rows_matching("sale.timeid", {3})  # build index
        # Group (3, 1) holds only sale 8.
        materialization.apply([(8, 3, 1, 1, 5)], sign=-1)
        assert materialization.rows_matching("sale.timeid", {3}) == []

    def test_index_reflects_updated_totals(self):
        database = paper_database()
        materialization = sale_materialization(database)
        materialization.rows_matching("sale.timeid", {1})
        materialization.apply([(901, 1, 1, 1, 100)], sign=+1)
        rows = materialization.rows_matching("sale.timeid", {1})
        group = next(r for r in rows if r[1] == 1)
        assert group[2] == 120  # 20 original + 100
        assert group[3] == 3

    def test_unpinned_column_rejected(self):
        import pytest
        from repro.core.maintenance import SelfMaintenanceError

        materialization = sale_materialization(paper_database())
        with pytest.raises(SelfMaintenanceError, match="no pinned column"):
            materialization.rows_matching("sale.sum_price", {1})


class TestProjectionIndex:
    def test_rows_matching_equals_scan(self):
        database = paper_database()
        materialization = time_materialization(database)
        relation = materialization.relation()
        for value in {row[1] for row in relation}:
            indexed = sorted(
                materialization.rows_matching("time.month", {value})
            )
            scanned = sorted(r for r in relation if r[1] == value)
            assert indexed == scanned

    def test_index_tracks_changes(self):
        database = paper_database()
        materialization = time_materialization(database)
        materialization.rows_matching("time.month", {1})  # build
        materialization.apply([(20, 5, 9, 1997)], sign=+1)
        assert materialization.rows_matching("time.month", {9}) == [(20, 9)]
        materialization.apply([(20, 5, 9, 1997)], sign=-1)
        assert materialization.rows_matching("time.month", {9}) == []

    def test_duplicate_rows_counted(self):
        # Bag semantics: duplicates survive through the index.  (The
        # paper's PSJ views are key-distinct, but the structure is a bag.)
        database = paper_database()
        materialization = time_materialization(database)
        materialization.rows_matching("time.month", {1})
        materialization.apply([(21, 1, 1, 1997), (22, 1, 1, 1997)], sign=+1)
        month1 = materialization.rows_matching("time.month", {1})
        assert (21, 1) in month1 and (22, 1) in month1


class TestRestrictionSoundness:
    def test_dimension_update_with_and_without_restriction_agree(self):
        database_a = paper_database()
        database_b = paper_database()
        view = product_sales_view(1997)
        fast = SelfMaintainer(view, database_a)
        slow = SelfMaintainer(view, database_b)
        slow.set_restriction(False)

        transaction = Transaction.of(
            Delta.update(
                "product",
                old_rows=[(3, "bestco", "dairy")],
                new_rows=[(3, "newco", "dairy")],
            )
        )
        database_a.apply(transaction)
        database_b.apply(transaction)
        fast.apply(transaction)
        slow.apply(transaction)
        assert_same_bag(fast.current_view(), slow.current_view())
        assert_same_bag(fast.current_view(), view.evaluate(database_a))
