"""Edge cases across the engine that the mainline tests do not reach."""

import pytest

from repro.engine.aggregates import AggregateFunction
from repro.engine.expressions import Column, Comparison, InList, Literal
from repro.engine.operators import (
    AggregateItem,
    GroupByItem,
    antijoin,
    equijoin,
    generalized_project,
    project,
    select,
    semijoin,
)
from repro.engine.relation import Relation
from repro.engine.schema import Attribute, Schema, SchemaError
from repro.engine.types import AttributeType


def pairs_relation():
    return Relation.from_columns(
        ["a", "b"],
        [AttributeType.INT, AttributeType.INT],
        [(1, 10), (1, 20), (2, 10), (2, 20)],
        qualifier="l",
    )


class TestMultiColumnJoins:
    def right(self):
        return Relation.from_columns(
            ["a", "b", "w"],
            [AttributeType.INT] * 3,
            [(1, 10, 100), (2, 20, 200), (3, 30, 300)],
            qualifier="r",
        )

    def test_equijoin_on_two_columns(self):
        result = equijoin(
            pairs_relation(), self.right(), [("l.a", "r.a"), ("l.b", "r.b")]
        )
        assert sorted(r[-1] for r in result) == [100, 200]

    def test_semijoin_on_two_columns(self):
        result = semijoin(
            pairs_relation(), self.right(), [("l.a", "r.a"), ("l.b", "r.b")]
        )
        assert sorted(result.rows) == [(1, 10), (2, 20)]

    def test_antijoin_complement(self):
        pairs = [("l.a", "r.a"), ("l.b", "r.b")]
        kept = semijoin(pairs_relation(), self.right(), pairs)
        dropped = antijoin(pairs_relation(), self.right(), pairs)
        assert len(kept) + len(dropped) == 4

    def test_join_against_empty_right(self):
        empty = Relation(self.right().schema)
        assert len(equijoin(pairs_relation(), empty, [("l.a", "r.a")])) == 0
        assert len(semijoin(pairs_relation(), empty, [("l.a", "r.a")])) == 0
        assert len(antijoin(pairs_relation(), empty, [("l.a", "r.a")])) == 4

    def test_join_from_empty_left(self):
        empty = Relation(pairs_relation().schema)
        assert len(equijoin(empty, self.right(), [("l.a", "r.a")])) == 0


class TestSelectionEdgeCases:
    def test_in_list_with_strings(self):
        relation = Relation.from_columns(
            ["s"], [AttributeType.STRING], [("x",), ("y",), ("z",)], qualifier="t"
        )
        result = select(relation, InList(Column("s", "t"), ["x", "z"]))
        assert sorted(result.column("s")) == ["x", "z"]

    def test_select_preserves_duplicates(self):
        relation = Relation.from_columns(
            ["v"], [AttributeType.INT], [(1,), (1,), (2,)], qualifier="t"
        )
        result = select(relation, Comparison("=", Column("v", "t"), Literal(1)))
        assert len(result) == 2

    def test_projection_of_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            project(pairs_relation(), ["l.zzz"])


class TestGeneralizedProjectionEdgeCases:
    def test_single_group_spanning_everything(self):
        result = generalized_project(
            pairs_relation(),
            [
                AggregateItem(AggregateFunction.SUM, Column("b", "l"), alias="s"),
                AggregateItem(AggregateFunction.COUNT, None, alias="c"),
            ],
        )
        assert result.rows == [(60, 4)]

    def test_group_key_with_every_row_unique(self):
        result = generalized_project(
            pairs_relation(),
            [
                GroupByItem(Column("a", "l")),
                GroupByItem(Column("b", "l")),
                AggregateItem(AggregateFunction.COUNT, None, alias="c"),
            ],
        )
        assert all(row[-1] == 1 for row in result)
        assert len(result) == 4

    def test_sum_of_negative_values(self):
        relation = Relation.from_columns(
            ["v"], [AttributeType.INT], [(-5,), (5,), (-7,)], qualifier="t"
        )
        result = generalized_project(
            relation,
            [AggregateItem(AggregateFunction.SUM, Column("v", "t"), alias="s")],
        )
        assert result.rows == [(-7,)]

    def test_avg_is_float_even_for_ints(self):
        relation = Relation.from_columns(
            ["v"], [AttributeType.INT], [(1,), (2,)], qualifier="t"
        )
        result = generalized_project(
            relation,
            [AggregateItem(AggregateFunction.AVG, Column("v", "t"), alias="m")],
        )
        assert result.rows == [(1.5,)]
        assert result.schema[0].atype is AttributeType.FLOAT

    def test_distinct_min_equals_plain_min(self):
        relation = Relation.from_columns(
            ["v"], [AttributeType.INT], [(3,), (3,), (1,)], qualifier="t"
        )
        plain = generalized_project(
            relation,
            [AggregateItem(AggregateFunction.MIN, Column("v", "t"), alias="m")],
        )
        distinct = generalized_project(
            relation,
            [
                AggregateItem(
                    AggregateFunction.MIN, Column("v", "t"), True, alias="m"
                )
            ],
        )
        assert plain.rows == distinct.rows == [(1,)]


class TestSchemaBoundaries:
    def test_empty_schema(self):
        schema = Schema([])
        assert len(schema) == 0
        assert schema.row_width_bytes() == 0
        assert schema.validate_row(()) == ()

    def test_wide_schema_lookup(self):
        schema = Schema(
            Attribute(f"c{i}", AttributeType.INT, "t") for i in range(100)
        )
        assert schema.index_of("c99") == 99
        assert schema.index_of("t.c0") == 0

    def test_float_relation_size(self):
        relation = Relation.from_columns(
            ["x"], [AttributeType.FLOAT], [(1.5,)] * 10, qualifier="t"
        )
        assert relation.size_bytes() == 40
