"""Matrix of view shapes under append-only (old detail data) maintenance."""

import pytest

from repro.core.maintenance import SelfMaintainer
from repro.core.view import ViewDefinition
from repro.engine.deltas import Delta, Transaction

from tests.helpers import assert_same_bag, paper_database
from tests.test_view_matrix import AGGREGATES, GROUPINGS, JOINS, SELECTIONS


def insert_battery():
    """Insert-only changes (what old detail data receives)."""
    return [
        Transaction.of(Delta.insertion("sale", [(201, 1, 1, 1, 2)])),
        Transaction.of(Delta.insertion("sale", [(202, 3, 3, 1, 900)])),
        Transaction.of(
            Delta.insertion("product", [(9, "omega", "misc")]),
            Delta.insertion("sale", [(203, 2, 9, 1, 77), (204, 2, 9, 1, 77)]),
        ),
        Transaction.of(
            Delta.insertion("time", [(10, 9, 6, 1997)]),
            Delta.insertion("sale", [(205, 10, 1, 1, 55)]),
        ),
    ]


def build_view(grouping: str, aggregates: str, selection: str):
    return ViewDefinition(
        name=f"ao_{grouping}_{aggregates}_{selection}",
        tables=("sale", "time", "product"),
        projection=GROUPINGS[grouping] + AGGREGATES[aggregates],
        selection=SELECTIONS[selection],
        joins=JOINS,
    )


@pytest.mark.parametrize("grouping", sorted(GROUPINGS))
@pytest.mark.parametrize("aggregates", sorted(AGGREGATES))
def test_append_only_matrix(grouping, aggregates):
    database = paper_database()
    view = build_view(grouping, aggregates, "time-filter")
    maintainer = SelfMaintainer(view, database, append_only=True)
    assert_same_bag(maintainer.current_view(), view.evaluate(database))
    for index, transaction in enumerate(insert_battery()):
        database.apply(transaction)
        maintainer.apply(transaction)
        assert_same_bag(
            maintainer.current_view(),
            view.evaluate(database),
            f"{view.name} step {index}",
        )


@pytest.mark.parametrize("aggregates", ["minmax", "everything"])
def test_append_only_folds_extrema_smaller(aggregates):
    """For extremum-bearing views the append-only auxiliary view never
    stores more rows than the regular one."""
    from repro.core.derivation import derive_auxiliary_views

    database = paper_database()
    view = build_view("dim-attr", aggregates, "none")
    regular = derive_auxiliary_views(view, database)
    relaxed = derive_auxiliary_views(view, database, append_only=True)
    regular_rows = regular.materialize(database)["sale"]
    relaxed_rows = relaxed.materialize(database)["sale"]
    assert len(relaxed_rows) <= len(regular_rows)
    assert len(relaxed_rows.schema) <= len(regular_rows.schema) + 2
