"""Documentation consistency: the README's code must actually run."""

import re
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def extract_python_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_quickstart_block_executes(self):
        readme = (ROOT / "README.md").read_text()
        blocks = extract_python_blocks(readme)
        assert blocks, "README has no python blocks"
        namespace: dict = {}
        for block in blocks:
            exec(compile(block, "<README>", "exec"), namespace)  # noqa: S102
        # The quickstart leaves a maintainer behind with a live view.
        assert "m" in namespace
        assert len(namespace["m"].current_view()) > 0

    def test_mentioned_files_exist(self):
        readme = (ROOT / "README.md").read_text()
        for match in re.findall(r"`(examples/[\w./]+\.py)`", readme):
            assert (ROOT / match).exists(), f"README mentions missing {match}"
        for match in re.findall(r"`(tests/[\w./]+\.py)`", readme):
            assert (ROOT / match).exists(), f"README mentions missing {match}"

    def test_experiment_index_matches_benchmarks(self):
        design = (ROOT / "DESIGN.md").read_text()
        for match in re.findall(r"`(benchmarks/[\w./]+\.py)`", design):
            assert (ROOT / match).exists(), f"DESIGN mentions missing {match}"

    def test_experiments_doc_covers_every_bench_file(self):
        experiments = (ROOT / "EXPERIMENTS.md").read_text()
        for bench in (ROOT / "benchmarks").glob("bench_*.py"):
            assert f"benchmarks/{bench.name}" in experiments, (
                f"{bench.name} is not documented in EXPERIMENTS.md"
            )
