"""Unit tests for the attribute type system and its storage model."""

import pytest

from repro.engine.types import AttributeType


class TestValidation:
    def test_int_accepts_integers(self):
        assert AttributeType.INT.validate(7)
        assert AttributeType.INT.validate(-3)

    def test_int_rejects_bool_and_float(self):
        assert not AttributeType.INT.validate(True)
        assert not AttributeType.INT.validate(1.5)

    def test_float_accepts_real_numbers(self):
        assert AttributeType.FLOAT.validate(1.5)
        assert AttributeType.FLOAT.validate(3)

    def test_float_rejects_bool(self):
        assert not AttributeType.FLOAT.validate(False)

    def test_string_accepts_text_only(self):
        assert AttributeType.STRING.validate("abc")
        assert not AttributeType.STRING.validate(1)

    def test_bool_accepts_booleans_only(self):
        assert AttributeType.BOOL.validate(True)
        assert not AttributeType.BOOL.validate(1)

    def test_no_nulls_anywhere(self):
        # Section 2.1: base tables contain no null values.
        for atype in AttributeType:
            assert not atype.validate(None)


class TestCoercion:
    def test_int_to_float_coercion(self):
        assert AttributeType.FLOAT.coerce(3) == 3.0
        assert isinstance(AttributeType.FLOAT.coerce(3), float)

    def test_invalid_value_raises(self):
        with pytest.raises(TypeError):
            AttributeType.INT.coerce("seven")

    def test_none_raises(self):
        with pytest.raises(TypeError):
            AttributeType.STRING.coerce(None)

    def test_valid_value_passes_through(self):
        assert AttributeType.STRING.coerce("x") == "x"


class TestSizeModel:
    def test_every_type_defaults_to_four_bytes(self):
        # The paper's model: every field is 4 bytes (Section 1.1).
        for atype in AttributeType:
            assert atype.default_size_bytes == 4

    def test_numeric_classification(self):
        assert AttributeType.INT.is_numeric
        assert AttributeType.FLOAT.is_numeric
        assert not AttributeType.STRING.is_numeric
        assert not AttributeType.BOOL.is_numeric
