"""Tests for warehouse checkpointing (restart without source access)."""

import json

import pytest

from repro.catalog.database import BaseTable, Database
from repro.core.maintenance import SelfMaintainer, SelfMaintenanceError
from repro.engine.deltas import Delta, Transaction
from repro.warehouse.persistence import (
    dump_maintainer,
    dump_warehouse,
    load_warehouse,
    restore_maintainer,
    restore_warehouse,
    save_warehouse,
)
from repro.warehouse.warehouse import Warehouse
from repro.workloads.retail import (
    paper_mini_database,
    product_sales_max_view,
    product_sales_view,
)
from repro.workloads.streams import TransactionGenerator

from tests.helpers import assert_same_bag, paper_database


def catalog_only(database: Database) -> Database:
    """The same schema with zero tuples: what a restarted warehouse has."""
    empty = Database()
    for table in database.tables:
        empty.add_table(
            BaseTable(
                table.name,
                {a.name: a.atype for a in table.schema},
                table.key,
                {c.attribute: c.referenced for c in table.references},
                table.exposed_updates,
            )
        )
    return empty


class TestMaintainerCheckpoint:
    def test_roundtrip_through_json(self):
        database = paper_database()
        view = product_sales_view(1997)
        original = SelfMaintainer(view, database)
        checkpoint = json.loads(json.dumps(dump_maintainer(original)))

        restored = restore_maintainer(view, catalog_only(database), checkpoint)
        assert_same_bag(restored.current_view(), original.current_view())
        for aux in original.aux_set:
            assert_same_bag(
                restored.aux_relation(aux.table),
                original.aux_relation(aux.table),
            )

    def test_restored_maintainer_keeps_maintaining(self):
        database = paper_database()
        view = product_sales_view(1997)
        original = SelfMaintainer(view, database)
        checkpoint = json.loads(json.dumps(dump_maintainer(original)))
        restored = restore_maintainer(view, catalog_only(database), checkpoint)

        transaction = Transaction.of(
            Delta.insertion("sale", [(100, 1, 2, 1, 42)])
        )
        database.apply(transaction)
        restored.apply(transaction)
        assert_same_bag(restored.current_view(), view.evaluate(database))

    def test_checkpoint_of_streamed_state(self):
        database = paper_mini_database()
        view = product_sales_view(1997)
        maintainer = SelfMaintainer(view, database)
        generator = TransactionGenerator(database, seed=3)
        for __ in range(15):
            maintainer.apply(generator.step())

        checkpoint = json.loads(json.dumps(dump_maintainer(maintainer)))
        restored = restore_maintainer(view, catalog_only(database), checkpoint)
        assert_same_bag(restored.current_view(), view.evaluate(database))
        # and it keeps going:
        for __ in range(10):
            restored.apply(generator.step())
        assert_same_bag(restored.current_view(), view.evaluate(database))

    def test_view_name_mismatch_rejected(self):
        database = paper_database()
        checkpoint = dump_maintainer(
            SelfMaintainer(product_sales_view(1997), database)
        )
        with pytest.raises(SelfMaintenanceError, match="checkpoint is for"):
            restore_maintainer(
                product_sales_max_view(), catalog_only(database), checkpoint
            )

    def test_append_only_mismatch_rejected(self):
        database = paper_database()
        view = product_sales_view(1997)
        checkpoint = dump_maintainer(SelfMaintainer(view, database))
        with pytest.raises(SelfMaintenanceError, match="append-only"):
            restore_maintainer(
                view, catalog_only(database), checkpoint, append_only=True
            )

    def test_unknown_format_rejected(self):
        database = paper_database()
        view = product_sales_view(1997)
        with pytest.raises(SelfMaintenanceError, match="format"):
            restore_maintainer(view, catalog_only(database), {"format": 99})


class TestWarehouseCheckpoint:
    def make_warehouse(self, database):
        warehouse = Warehouse(database)
        warehouse.register(product_sales_view(1997))
        warehouse.register(product_sales_max_view())
        return warehouse

    def test_roundtrip_in_memory(self):
        database = paper_database()
        warehouse = self.make_warehouse(database)
        checkpoint = json.loads(json.dumps(dump_warehouse(warehouse)))
        restored = restore_warehouse(
            {
                "product_sales": product_sales_view(1997),
                "product_sales_max": product_sales_max_view(),
            },
            catalog_only(database),
            checkpoint,
        )
        for name in warehouse.view_names:
            assert_same_bag(restored.summary(name), warehouse.summary(name))

    def test_roundtrip_through_file(self, tmp_path):
        database = paper_database()
        warehouse = self.make_warehouse(database)
        path = tmp_path / "warehouse.json"
        save_warehouse(warehouse, path)
        restored = load_warehouse(
            {
                "product_sales": product_sales_view(1997),
                "product_sales_max": product_sales_max_view(),
            },
            catalog_only(database),
            path,
        )
        transaction = Transaction.of(
            Delta.insertion("sale", [(200, 2, 3, 1, 7)])
        )
        database.apply(transaction)
        restored.apply(transaction)
        for view in (product_sales_view(1997), product_sales_max_view()):
            assert_same_bag(
                restored.summary(view.name), view.evaluate(database)
            )

    def test_view_set_mismatch_rejected(self):
        database = paper_database()
        warehouse = self.make_warehouse(database)
        checkpoint = dump_warehouse(warehouse)
        with pytest.raises(SelfMaintenanceError, match="definitions"):
            restore_warehouse(
                {"product_sales": product_sales_view(1997)},
                catalog_only(database),
                checkpoint,
            )

    def test_restore_never_reads_tuples(self):
        # The restore catalog has zero rows; success proves metadata-only
        # access.
        database = paper_database()
        warehouse = self.make_warehouse(database)
        catalog = catalog_only(database)
        assert all(len(t.relation) == 0 for t in catalog.tables)
        restored = restore_warehouse(
            {
                "product_sales": product_sales_view(1997),
                "product_sales_max": product_sales_max_view(),
            },
            catalog,
            dump_warehouse(warehouse),
        )
        assert len(restored.summary("product_sales")) > 0
