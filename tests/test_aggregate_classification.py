"""Tests for the SMA/SMAS/CSMAS classification (Tables 1 and 2).

Besides asserting the published classification, these tests *probe* the
engine's incremental state machines to confirm the classification
describes real behaviour — the same probe the Table 1 benchmark runs.
"""

import pytest

from repro.core.aggregates import (
    AggregateClass,
    classification_table,
    classify_aggregate,
    count_star_item,
    is_csmas,
    replacement_aggregates,
)
from repro.engine.aggregates import (
    AggregateFunction,
    BareSumState,
    MaintenanceError,
    make_aggregate_state,
)
from repro.engine.expressions import Column
from repro.engine.operators import AggregateItem


class TestTable1:
    """Table 1: SMA and SMAS per change kind."""

    def test_count(self):
        info = classify_aggregate(AggregateFunction.COUNT)
        assert (info.sma_insert, info.sma_delete) == (True, True)
        assert (info.smas_insert, info.smas_delete) == (True, True)

    def test_sum(self):
        info = classify_aggregate(AggregateFunction.SUM)
        assert info.sma_insert and not info.sma_delete
        assert info.smas_delete  # with COUNT included
        assert info.companions == (AggregateFunction.COUNT,)

    def test_avg(self):
        info = classify_aggregate(AggregateFunction.AVG)
        assert not info.sma_insert and not info.sma_delete
        assert info.smas_insert and info.smas_delete
        assert set(info.companions) == {
            AggregateFunction.SUM,
            AggregateFunction.COUNT,
        }

    @pytest.mark.parametrize(
        "func", [AggregateFunction.MIN, AggregateFunction.MAX]
    )
    def test_min_max(self, func):
        info = classify_aggregate(func)
        assert info.sma_insert and not info.sma_delete
        assert not info.smas_delete


class TestTable2:
    """Table 2: CSMAS classification and replacements."""

    @pytest.mark.parametrize(
        "func",
        [AggregateFunction.COUNT, AggregateFunction.SUM, AggregateFunction.AVG],
    )
    def test_csmas_aggregates(self, func):
        assert classify_aggregate(func).aggregate_class is AggregateClass.CSMAS

    @pytest.mark.parametrize(
        "func", [AggregateFunction.MIN, AggregateFunction.MAX]
    )
    def test_non_csmas_aggregates(self, func):
        assert (
            classify_aggregate(func).aggregate_class is AggregateClass.NON_CSMAS
        )

    @pytest.mark.parametrize("func", list(AggregateFunction))
    def test_distinct_is_always_non_csmas(self, func):
        info = classify_aggregate(func, distinct=True)
        assert info.aggregate_class is AggregateClass.NON_CSMAS

    def test_count_replaced_by_count_star(self):
        item = AggregateItem(AggregateFunction.COUNT, Column("a", "t"))
        replaced = replacement_aggregates(item)
        assert len(replaced) == 1
        assert replaced[0].is_count_star

    @pytest.mark.parametrize(
        "func", [AggregateFunction.SUM, AggregateFunction.AVG]
    )
    def test_sum_avg_replaced_by_sum_and_count(self, func):
        item = AggregateItem(func, Column("a", "t"))
        replaced = replacement_aggregates(item)
        assert [r.func for r in replaced] == [
            AggregateFunction.SUM,
            AggregateFunction.COUNT,
        ]
        assert replaced[1].is_count_star

    @pytest.mark.parametrize(
        "func", [AggregateFunction.MIN, AggregateFunction.MAX]
    )
    def test_min_max_not_replaced(self, func):
        item = AggregateItem(func, Column("a", "t"))
        assert replacement_aggregates(item) == (item,)

    def test_distinct_not_replaced(self):
        item = AggregateItem(
            AggregateFunction.COUNT, Column("a", "t"), distinct=True
        )
        assert replacement_aggregates(item) == (item,)

    def test_count_star_item(self):
        item = count_star_item("cnt")
        assert item.is_count_star and item.alias == "cnt"


class TestAppendOnlyRelaxation:
    """Section 4 future work: old detail data sees insertions only."""

    @pytest.mark.parametrize(
        "func", [AggregateFunction.MIN, AggregateFunction.MAX]
    )
    def test_min_max_become_csmas(self, func):
        info = classify_aggregate(func, append_only=True)
        assert info.aggregate_class is AggregateClass.CSMAS
        assert info.sma_delete  # deletions never occur

    def test_distinct_still_non_csmas(self):
        info = classify_aggregate(
            AggregateFunction.COUNT, distinct=True, append_only=True
        )
        assert info.aggregate_class is AggregateClass.NON_CSMAS

    def test_is_csmas_helper(self):
        item = AggregateItem(AggregateFunction.MAX, Column("a", "t"))
        assert not is_csmas(item)
        assert is_csmas(item, append_only=True)


class TestClassificationMatchesEngine:
    """The classification must describe the engine's actual behaviour."""

    def test_csmas_states_survive_any_change(self):
        for func in (
            AggregateFunction.COUNT,
            AggregateFunction.SUM,
            AggregateFunction.AVG,
        ):
            state = make_aggregate_state(func)
            state.insert(5)
            state.insert(7)
            state.delete(5)  # must not raise: CSMAS handles deletions
            assert state.result() is not None

    def test_min_max_fail_exactly_on_extremum_deletion(self):
        for func in (AggregateFunction.MIN, AggregateFunction.MAX):
            assert not classify_aggregate(func).smas_delete
            state = make_aggregate_state(func)
            state.insert(5)
            state.insert(9)
            extremum = 5 if func is AggregateFunction.MIN else 9
            with pytest.raises(MaintenanceError):
                state.delete(extremum)

    def test_sum_without_count_is_not_a_smas(self):
        # Table 1's footnote: SUM needs COUNT for deletions.
        state = BareSumState()
        state.insert(3)
        state.delete(3)
        with pytest.raises(MaintenanceError):
            state.result()

    def test_distinct_states_are_never_maintainable(self):
        state = make_aggregate_state(AggregateFunction.SUM, distinct=True)
        with pytest.raises(MaintenanceError):
            state.insert(1)


class TestClassificationTable:
    def test_table_covers_all_aggregates(self):
        rows = classification_table()
        assert {row["aggregate"] for row in rows} == {
            "COUNT", "SUM", "AVG", "MIN", "MAX",
        }

    def test_replacements_match_paper(self):
        by_name = {row["aggregate"]: row for row in classification_table()}
        assert by_name["COUNT"]["replaced_by"] == "COUNT(*)"
        assert by_name["SUM"]["replaced_by"] == "SUM, COUNT(*)"
        assert by_name["AVG"]["replaced_by"] == "SUM, COUNT(*)"
        assert by_name["MIN"]["replaced_by"] == "Not replaced"
        assert by_name["MAX"]["replaced_by"] == "Not replaced"

    def test_append_only_table(self):
        by_name = {
            row["aggregate"]: row
            for row in classification_table(append_only=True)
        }
        assert by_name["MIN"]["class"] == "CSMAS"
        assert by_name["MAX"]["class"] == "CSMAS"
