"""Tests for the shared-detail warehouse (operational Section 4 sharing)."""

from repro.warehouse.shared import SharedDetailWarehouse
from repro.workloads.retail import (
    RetailConfig,
    build_retail_database,
    product_sales_max_view,
    product_sales_view,
)
from repro.workloads.snowflake import (
    build_snowflake_database,
    category_sales_by_product_view,
    category_sales_view,
)
from repro.workloads.streams import TransactionGenerator

from tests.helpers import assert_same_bag, paper_database


def retail_views():
    return [product_sales_view(1997), product_sales_max_view()]


class TestInitialState:
    def test_summaries_match_evaluation(self):
        database = paper_database()
        warehouse = SharedDetailWarehouse(retail_views(), database)
        for view in retail_views():
            assert_same_bag(
                warehouse.summary(view.name), view.evaluate(database)
            )

    def test_view_auxiliaries_match_direct_derivation(self):
        from repro.core.derivation import derive_auxiliary_views

        database = paper_database()
        warehouse = SharedDetailWarehouse(retail_views(), database)
        for view in retail_views():
            aux_set = derive_auxiliary_views(
                view, database, allow_elimination=False
            )
            direct = aux_set.materialize(database)
            recovered = warehouse.view_auxiliaries(view.name)
            for table in direct:
                assert_same_bag(recovered[table], direct[table])

    def test_view_names(self):
        warehouse = SharedDetailWarehouse(retail_views(), paper_database())
        assert set(warehouse.view_names) == {
            "product_sales", "product_sales_max",
        }


class TestMaintenance:
    def test_retail_stream(self):
        database = build_retail_database(
            RetailConfig(
                days=15,
                stores=2,
                products=20,
                products_sold_per_day=8,
                transactions_per_product=2,
                start_year=1997,
            )
        )
        views = retail_views()
        warehouse = SharedDetailWarehouse(views, database)
        generator = TransactionGenerator(database, seed=5)
        for step in range(30):
            warehouse.apply(generator.step())
        for view in views:
            assert_same_bag(
                warehouse.summary(view.name), view.evaluate(database)
            )

    def test_snowflake_stream_with_eliminable_view(self):
        # category_sales_by_product would eliminate its root under solo
        # maintenance; under shared detail it reconstructs instead.
        database = build_snowflake_database()
        views = [category_sales_view(), category_sales_by_product_view()]
        warehouse = SharedDetailWarehouse(views, database)
        generator = TransactionGenerator(database, seed=8)
        for __ in range(30):
            warehouse.apply(generator.step())
        for view in views:
            assert_same_bag(
                warehouse.summary(view.name), view.evaluate(database)
            )

    def test_unreferenced_table_deltas_ignored(self):
        from repro.engine.deltas import Delta, Transaction

        database = paper_database()
        views = [product_sales_max_view()]  # only references sale
        warehouse = SharedDetailWarehouse(views, database)
        transaction = Transaction.of(
            Delta.insertion("product", [(9, "zeta", "misc")])
        )
        database.apply(transaction)
        warehouse.apply(transaction)
        assert_same_bag(
            warehouse.summary("product_sales_max"),
            product_sales_max_view().evaluate(database),
        )


class TestStorage:
    def test_shared_detail_counts_once(self):
        from repro.core.derivation import derive_auxiliary_views
        from repro.core.sharing import sharing_report

        database = build_retail_database(
            RetailConfig(
                days=15,
                stores=2,
                products=20,
                products_sold_per_day=10,
                transactions_per_product=3,
                start_year=1997,
            )
        )
        views = retail_views()
        warehouse = SharedDetailWarehouse(views, database)
        aux_sets = [derive_auxiliary_views(v, database) for v in views]
        report = sharing_report(views, aux_sets, database)
        assert warehouse.detail_size_bytes() == report.shared_bytes
