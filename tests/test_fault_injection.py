"""Crash-consistency property suite: failed transactions change nothing.

The warehouse cannot re-derive ``{V} ∪ X`` from the sealed sources, so
a transaction that fails at *any* point of the maintenance loop must
leave every relation, index, and summary group exactly as it found
them.  These tests inject deterministic faults at every phase boundary
(and drive naturally-failing transactions) and assert state equality
via canonical fingerprints.
"""

import json
import random

import pytest

from repro.core.maintenance import SelfMaintainer, SelfMaintenanceError
from repro.engine.deltas import Delta, Transaction
from repro.engine.relation import Relation, RelationError
from repro.engine.types import AttributeType
from repro.engine.undolog import UndoLog
from repro.perf import PHASES
from repro.testing.faults import (
    FaultInjector,
    InjectedFault,
    state_fingerprint,
    verify_index_consistency,
)
from repro.warehouse.persistence import dump_maintainer, restore_maintainer
from repro.workloads.retail import product_sales_max_view, product_sales_view
from repro.workloads.streams import TransactionGenerator

from tests.helpers import assert_same_bag, paper_database

INJECTABLE_PHASES = tuple(p for p in PHASES if p != "rollback")

#: A transaction exercising deletions, insertions, and a DISTINCT
#: recompute (deleting sale 4 removes the only "bestco" sale of month 1).
MIXED_TX = Transaction.of(
    Delta(
        "sale",
        inserted=((100, 1, 1, 1, 30), (101, 3, 2, 1, 40)),
        deleted=((1, 1, 1, 1, 10), (4, 1, 3, 1, 5)),
    )
)

#: For the single-table MAX view: deleting the group maximum forces a
#: recompute from the auxiliary view.
MAX_TX = Transaction.of(
    Delta(
        "sale",
        inserted=((100, 1, 2, 1, 30),),
        deleted=((9, 4, 1, 1, 99),),
    )
)


class TestEngineUndo:
    """Unit coverage of the engine-level undo plumbing."""

    def make_relation(self):
        return Relation.from_columns(
            ("id", "price"),
            (AttributeType.INT, AttributeType.INT),
            [(1, 10), (2, 20), (2, 20), (3, 30)],
        )

    def test_rollback_restores_bag_and_indexes(self):
        relation = self.make_relation()
        index = relation.index_on("id")
        before_rows = sorted(relation.rows)
        log = UndoLog()
        relation.begin_undo(log)
        relation.insert((4, 40))
        relation.delete((2, 20))
        relation.delete_where(lambda row: row[1] >= 30)
        relation.end_undo()
        assert sorted(relation.rows) != before_rows
        assert log.rollback() > 0
        assert sorted(relation.rows) == before_rows
        from collections import Counter

        assert index.as_multiset() == Counter(relation.rows)

    def test_commit_discards_entries(self):
        relation = self.make_relation()
        log = UndoLog()
        relation.begin_undo(log)
        relation.insert((4, 40))
        relation.end_undo()
        log.commit()
        assert log.rollback() == 0
        assert len(relation) == 5

    def test_index_created_mid_transaction_is_dropped_on_rollback(self):
        relation = self.make_relation()
        log = UndoLog()
        relation.begin_undo(log)
        relation.insert((4, 40))
        index = relation.index_on("price")  # born after the insert
        assert 40 in index.keys()
        relation.end_undo()
        log.rollback()
        # A fresh probe rebuilds a consistent index from the restored bag.
        rebuilt = relation.index_on("price")
        assert rebuilt is not index
        assert 40 not in rebuilt.keys()
        assert len(rebuilt) == len(relation)

    def test_nested_scope_refused(self):
        relation = self.make_relation()
        relation.begin_undo(UndoLog())
        with pytest.raises(RelationError):
            relation.begin_undo(UndoLog())

    def test_rows_undone_accounting(self):
        relation = self.make_relation()
        log = UndoLog()
        relation.begin_undo(log)
        relation.insert((4, 40))
        relation.delete_all([(2, 20), (2, 20)])
        relation.end_undo()
        assert log.rows_recorded == 3
        assert log.rollback() == 3


@pytest.mark.parametrize(
    "make_view,transaction",
    [
        (product_sales_view, MIXED_TX),
        (product_sales_max_view, MAX_TX),
    ],
    ids=["distinct-star", "max-single-table"],
)
@pytest.mark.parametrize("hotpath", [True, False], ids=["hotpath", "legacy"])
def test_rollback_at_every_phase_boundary(make_view, transaction, hotpath):
    """The tentpole property: for every phase, boundary side, and
    occurrence, an injected fault leaves ``{V} ∪ X`` fingerprint-equal
    to the pre-transaction state, and the maintainer then applies the
    same transaction correctly."""
    view = make_view()
    control = SelfMaintainer(view, paper_database(), hotpath=hotpath)
    control.apply(transaction)
    expected = state_fingerprint(control)
    fired_points = 0
    rolled_back_points = 0
    for phase in INJECTABLE_PHASES:
        for when in ("before", "after"):
            for occurrence in (1, 2, 3):
                maintainer = SelfMaintainer(
                    view, paper_database(), hotpath=hotpath
                )
                before = state_fingerprint(maintainer)
                injector = FaultInjector(maintainer)
                injector.arm(phase, occurrence=occurrence, when=when)
                try:
                    maintainer.apply(transaction)
                except InjectedFault:
                    fired_points += 1
                    point = f"{phase}/{when}/{occurrence}"
                    assert state_fingerprint(maintainer) == before, point
                    verify_index_consistency(maintainer)
                    # Faults inside the coalesce/validate prelude strike
                    # before any mutation, so nothing needs undoing;
                    # everything later must have rolled back exactly once.
                    rollbacks = maintainer.perf.counters["rollbacks"]
                    if phase in ("coalesce", "validate"):
                        assert rollbacks == 0, point
                    else:
                        assert rollbacks == 1, point
                        rolled_back_points += 1
                    # The rolled-back maintainer must still work.
                    maintainer.apply(transaction)
                injector.uninstall()
                assert state_fingerprint(maintainer) == expected, (
                    f"{phase}/{when}/{occurrence}"
                )
    assert fired_points >= 8  # the sweep genuinely exercised mid-apply faults
    assert rolled_back_points >= 4  # including faults that forced undo work


def test_seeded_stream_with_random_injection_points():
    """Property test over a random (integrity-valid) update stream:
    arbitrary injection points never corrupt state, and the maintained
    view keeps matching full re-evaluation after every recovery."""
    rng = random.Random(7)
    database = paper_database()
    view = product_sales_view(1997)
    maintainer = SelfMaintainer(view, database)
    generator = TransactionGenerator(database, seed=23)
    fired = 0
    for step in range(40):
        transaction = generator.step()
        before = state_fingerprint(maintainer)
        injector = FaultInjector(maintainer)
        injector.arm(
            rng.choice(INJECTABLE_PHASES),
            occurrence=rng.randint(1, 3),
            when=rng.choice(("before", "after")),
        )
        try:
            maintainer.apply(transaction)
        except InjectedFault:
            fired += 1
            assert state_fingerprint(maintainer) == before, f"step={step}"
            verify_index_consistency(maintainer)
            injector.uninstall()
            maintainer.apply(transaction)  # recovery: clean retry
        else:
            injector.uninstall()
        assert_same_bag(
            maintainer.current_view(), view.evaluate(database), f"step={step}"
        )
    assert fired >= 5


def test_natural_fault_mid_apply_rolls_back():
    """A deletion whose detail group does not exist fails *after* the
    summary view was already decremented; the undo log must restore the
    group the deletion wrongly removed."""
    database = paper_database()
    view = product_sales_view(1997)
    maintainer = SelfMaintainer(view, database)
    before = state_fingerprint(maintainer)
    # timeid=3/productid=3 joins fine but no such sale group exists;
    # month 2's only real sale makes the view group vanish first.
    phantom = Transaction.of(Delta.deletion("sale", [(999, 3, 3, 1, 7)]))
    with pytest.raises(SelfMaintenanceError):
        maintainer.apply(phantom)
    assert state_fingerprint(maintainer) == before
    verify_index_consistency(maintainer)
    assert maintainer.perf.counters["rollbacks"] == 1
    assert_same_bag(maintainer.current_view(), view.evaluate(database))


def test_upfront_validation_rejects_before_any_mutation():
    """A malformed row anywhere in the transaction is rejected by the
    validation pass: no mutation happens, so no rollback is needed."""
    database = paper_database()
    maintainer = SelfMaintainer(product_sales_view(1997), database)
    before = state_fingerprint(maintainer)
    bad = Transaction.of(
        Delta(
            "sale",
            inserted=((100, 1, 1, 1, 30),),
            deleted=((1, 1, 1),),  # wrong arity
        )
    )
    with pytest.raises(Exception):
        maintainer.apply(bad)
    assert state_fingerprint(maintainer) == before
    assert maintainer.perf.counters["rollbacks"] == 0
    assert maintainer.perf.counters["rows_undone"] == 0


def test_checkpoint_roundtrip_after_rollback():
    """A rolled-back transaction leaves state that checkpoints and
    restores exactly, and both copies resume identically."""
    database = paper_database()
    view = product_sales_view(1997)
    maintainer = SelfMaintainer(view, database)
    injector = FaultInjector(maintainer)
    injector.arm("aux-apply", when="after")
    with pytest.raises(InjectedFault):
        maintainer.apply(MIXED_TX)
    injector.uninstall()
    checkpoint = json.loads(json.dumps(dump_maintainer(maintainer)))
    restored = restore_maintainer(view, database, checkpoint)
    assert state_fingerprint(restored) == state_fingerprint(maintainer)
    database.apply(MIXED_TX)
    maintainer.apply(MIXED_TX)
    restored.apply(MIXED_TX)
    assert_same_bag(restored.current_view(), maintainer.current_view())
    assert_same_bag(restored.current_view(), view.evaluate(database))


def test_checkpoint_refused_mid_transaction():
    """A checkpoint cut while apply is mutating (here: from inside the
    injected crash) is refused — it could capture partial application."""
    database = paper_database()
    maintainer = SelfMaintainer(product_sales_view(1997), database)
    refused = []

    def attempt_checkpoint():
        try:
            dump_maintainer(maintainer)
        except SelfMaintenanceError as error:
            refused.append(error)

    injector = FaultInjector(maintainer)
    injector.arm("aggregate-fold", on_fire=attempt_checkpoint)
    with pytest.raises(InjectedFault):
        maintainer.apply(MIXED_TX)
    injector.uninstall()
    assert refused, "mid-transaction checkpoint should have been refused"
    dump_maintainer(maintainer)  # between transactions it works again


def test_injector_validation():
    maintainer = SelfMaintainer(product_sales_view(1997), paper_database())
    injector = FaultInjector(maintainer)
    with pytest.raises(ValueError):
        injector.arm("rollback")
    with pytest.raises(ValueError):
        injector.arm("no-such-phase")
    with pytest.raises(ValueError):
        injector.arm("validate", when="during")
    with pytest.raises(ValueError):
        injector.arm("validate", occurrence=0)
    injector.uninstall()


def test_perf_report_surfaces_rollback_counters():
    maintainer = SelfMaintainer(product_sales_view(1997), paper_database())
    with pytest.raises(SelfMaintenanceError):
        maintainer.apply(
            Transaction.of(Delta.deletion("sale", [(999, 3, 3, 1, 7)]))
        )
    rendered = maintainer.perf.render()
    assert "rollbacks" in rendered
    assert "rows_undone" in rendered
    assert "rollback" in maintainer.perf.snapshot()["timings_ms"]
