"""HAVING clauses under incremental maintenance, plus long-haul soaks."""

from repro.core.maintenance import SelfMaintainer
from repro.core.view import JoinCondition, make_view
from repro.engine.aggregates import AggregateFunction
from repro.engine.deltas import Delta, Transaction
from repro.engine.expressions import Column, Comparison, Literal
from repro.engine.operators import AggregateItem, GroupByItem
from repro.workloads.random_gen import random_scenario
from repro.workloads.retail import product_sales_view
from repro.workloads.snowflake import build_snowflake_database, category_sales_view
from repro.workloads.streams import TransactionGenerator

from tests.helpers import assert_same_bag, paper_database


def having_view(threshold: int = 2):
    return make_view(
        "busy_products",
        ("sale", "product"),
        [
            GroupByItem(Column("id", "product")),
            GroupByItem(Column("brand", "product")),
            AggregateItem(AggregateFunction.COUNT, None, alias="n"),
            AggregateItem(
                AggregateFunction.SUM, Column("price", "sale"), alias="rev"
            ),
        ],
        joins=[JoinCondition("sale", "productid", "product", "id")],
        having=Comparison(">=", Column("n"), Literal(threshold)),
    )


class TestHavingUnderMaintenance:
    def test_group_crosses_threshold_upward(self):
        database = paper_database()
        view = having_view(threshold=2)
        maintainer = SelfMaintainer(view, database)
        assert_same_bag(maintainer.current_view(), view.evaluate(database))
        # Product 3 has a single sale: invisible. A second sale makes it
        # cross the HAVING threshold.
        before = {row[0] for row in maintainer.current_view()}
        assert 3 not in before
        transaction = Transaction.of(
            Delta.insertion("sale", [(400, 1, 3, 1, 6)])
        )
        database.apply(transaction)
        maintainer.apply(transaction)
        assert_same_bag(maintainer.current_view(), view.evaluate(database))
        assert 3 in {row[0] for row in maintainer.current_view()}

    def test_group_crosses_threshold_downward(self):
        database = paper_database()
        view = having_view(threshold=3)
        maintainer = SelfMaintainer(view, database)
        # Product 2 has three sales; deleting one hides it again.
        assert 2 in {row[0] for row in maintainer.current_view()}
        transaction = Transaction.of(
            Delta.deletion("sale", [(3, 1, 2, 1, 10)])
        )
        database.apply(transaction)
        maintainer.apply(transaction)
        assert_same_bag(maintainer.current_view(), view.evaluate(database))
        assert 2 not in {row[0] for row in maintainer.current_view()}

    def test_hidden_groups_keep_exact_state(self):
        # A group below the threshold must still track exactly so it
        # resurfaces with correct aggregates.
        database = paper_database()
        view = having_view(threshold=5)
        maintainer = SelfMaintainer(view, database)
        rows = [(500 + i, 1, 3, 1, 7) for i in range(4)]
        transaction = Transaction.of(Delta.insertion("sale", rows))
        database.apply(transaction)
        maintainer.apply(transaction)
        assert_same_bag(maintainer.current_view(), view.evaluate(database))
        visible = {row[0]: row for row in maintainer.current_view()}
        assert visible[3][2] == 5  # 1 original + 4 new sales
        assert visible[3][3] == 5 + 4 * 7

    def test_having_with_stream(self):
        database = paper_database()
        view = having_view(threshold=2)
        maintainer = SelfMaintainer(view, database)
        generator = TransactionGenerator(database, seed=61)
        for step in range(25):
            maintainer.apply(generator.step())
            assert_same_bag(
                maintainer.current_view(),
                view.evaluate(database),
                f"step {step}",
            )


class TestSoak:
    """Long-haul streams: hundreds of transactions, checked throughout."""

    def test_star_soak(self):
        database = paper_database()
        view = product_sales_view(1997)
        maintainer = SelfMaintainer(view, database)
        generator = TransactionGenerator(database, seed=71)
        for step in range(200):
            maintainer.apply(generator.step())
            if step % 20 == 19:
                assert_same_bag(
                    maintainer.current_view(),
                    view.evaluate(database),
                    f"star soak step {step}",
                )

    def test_snowflake_soak(self):
        database = build_snowflake_database(days=15, sales_per_day=20)
        view = category_sales_view()
        maintainer = SelfMaintainer(view, database)
        generator = TransactionGenerator(database, seed=73)
        for step in range(200):
            maintainer.apply(generator.step())
            if step % 20 == 19:
                assert_same_bag(
                    maintainer.current_view(),
                    view.evaluate(database),
                    f"snowflake soak step {step}",
                )

    def test_random_scenario_soak(self):
        scenario = random_scenario(4242, initial_rows=16)
        maintainer = SelfMaintainer(scenario.view, scenario.database)
        for step in range(150):
            maintainer.apply(scenario.generator.step())
            if step % 15 == 14:
                assert_same_bag(
                    maintainer.current_view(),
                    scenario.view.evaluate(scenario.database),
                    f"random soak step {step}",
                )
        expected = maintainer.aux_set.materialize(scenario.database)
        for aux in maintainer.aux_set:
            assert_same_bag(
                maintainer.aux_relation(aux.table), expected[aux.table]
            )
