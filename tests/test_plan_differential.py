"""Differential tests: the plan layer against ground-truth evaluation.

Two families:

1. Hypothesis properties over random GPSJ views and random transaction
   streams — plan-based evaluation must match the retained eager
   evaluator bit for bit, and plan-driven maintenance (both policies)
   must track recomputation.
2. Fault injection with the plan layer engaged: a fault fired inside a
   maintenance phase — after plan-node caches and the cross-view shared
   result cache have been populated mid-transaction — must leave every
   maintainer's state exactly as fingerprinted before the transaction.
"""

from hypothesis import HealthCheck, given, settings, strategies as st
import pytest

from repro.core.maintenance import SelfMaintainer
from repro.testing.faults import (
    FaultInjector,
    InjectedFault,
    state_fingerprint,
    verify_index_consistency,
)
from repro.warehouse.warehouse import Warehouse
from repro.workloads.random_gen import random_scenario
from repro.workloads.retail import (
    RetailConfig,
    build_retail_database,
    product_sales_max_view,
    product_sales_view,
)
from repro.workloads.streams import TransactionGenerator

from tests.helpers import assert_same_bag

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(seed=st.integers(0, 10_000))
@settings(**SETTINGS)
def test_planned_evaluation_is_bit_identical_to_eager(seed):
    scenario = random_scenario(seed)
    planned = scenario.view.evaluate(scenario.database)
    eager = scenario.view.evaluate_eager(scenario.database)
    assert planned.schema == eager.schema, f"seed={seed}"
    assert planned.rows == eager.rows, f"seed={seed}"  # exact order too


@given(seed=st.integers(0, 10_000), steps=st.integers(1, 6))
@settings(**SETTINGS)
def test_planned_evaluation_tracks_random_streams(seed, steps):
    scenario = random_scenario(seed)
    for step in range(steps):
        scenario.generator.step()
        planned = scenario.view.evaluate(scenario.database)
        eager = scenario.view.evaluate_eager(scenario.database)
        assert planned.rows == eager.rows, f"seed={seed} step={step}"


@given(seed=st.integers(0, 10_000), steps=st.integers(1, 6))
@settings(**SETTINGS)
def test_both_plan_policies_track_recomputation(seed, steps):
    scenario = random_scenario(seed)
    indexed = SelfMaintainer(scenario.view, scenario.database)
    naive = SelfMaintainer(scenario.view, scenario.database, hotpath=False)
    for step in range(steps):
        transaction = scenario.generator.step()
        indexed.apply(transaction)
        naive.apply(transaction)
        expected = scenario.view.evaluate_eager(scenario.database)
        assert_same_bag(
            indexed.current_view(), expected, f"seed={seed} step={step}"
        )
        assert_same_bag(
            naive.current_view(), expected, f"seed={seed} step={step}"
        )


def two_view_warehouse():
    database = build_retail_database(
        RetailConfig(
            days=6,
            stores=2,
            products=8,
            products_sold_per_day=4,
            transactions_per_product=2,
            start_year=1997,
        )
    )
    warehouse = Warehouse(database)
    warehouse.register(product_sales_view(1997))
    warehouse.register(product_sales_max_view())
    return database, warehouse


class TestFaultInjectionWithPlans:
    """Undo-log atomicity holds with plan-node caches and the shared
    cross-view result cache populated mid-transaction."""

    @pytest.mark.parametrize(
        "phase", ["local-reduce", "join-reduce", "aggregate-fold", "aux-apply"]
    )
    def test_fault_mid_plan_rolls_back_all_views(self, phase):
        database, warehouse = two_view_warehouse()
        generator = TransactionGenerator(database, seed=41)
        # tx1 populates delta-plan caches, indexes, and exercises the
        # shared result dict before any fault is armed.
        warehouse.apply(generator.step())
        fingerprints = {
            name: state_fingerprint(warehouse.maintainer(name))
            for name in warehouse.view_names
        }
        victim = warehouse.view_names[-1]
        injector = FaultInjector(warehouse.maintainer(victim))
        injector.arm(phase)
        tx2 = generator.next_transaction()
        with pytest.raises(InjectedFault):
            warehouse.apply(tx2)
        for name in warehouse.view_names:
            maintainer = warehouse.maintainer(name)
            assert state_fingerprint(maintainer) == fingerprints[name], (
                f"view {name} not rolled back after fault in {phase}"
            )
            verify_index_consistency(maintainer)
        # After disarming, the same transaction applies cleanly and the
        # summaries match ground truth.
        injector.uninstall()
        database.apply(tx2)
        warehouse.apply(tx2)
        for name, view in (
            ("product_sales", product_sales_view(1997)),
            ("product_sales_max", product_sales_max_view()),
        ):
            assert_same_bag(warehouse.summary(name), view.evaluate(database))

    def test_fault_in_first_view_leaves_second_untouched(self):
        database, warehouse = two_view_warehouse()
        generator = TransactionGenerator(database, seed=43)
        warehouse.apply(generator.step())
        fingerprints = {
            name: state_fingerprint(warehouse.maintainer(name))
            for name in warehouse.view_names
        }
        first = warehouse.view_names[0]
        injector = FaultInjector(warehouse.maintainer(first))
        injector.arm("aggregate-fold")
        tx = generator.next_transaction()
        with pytest.raises(InjectedFault):
            warehouse.apply(tx)
        injector.uninstall()
        for name in warehouse.view_names:
            assert state_fingerprint(warehouse.maintainer(name)) == (
                fingerprints[name]
            )
            verify_index_consistency(warehouse.maintainer(name))
