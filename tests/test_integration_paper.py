"""End-to-end walk-through of the paper's running examples.

Follows the narrative of Sections 1.1 and 3.2 exactly: define
``product_sales``, derive ``saledtl``/``timedtl``/``productdtl``, verify
the view is reconstructable from them alone, stream changes with sources
sealed, and confirm the storage savings argument on live data.
"""

from repro.core.derivation import derive_auxiliary_views
from repro.core.maintenance import SelfMaintainer
from repro.core.rewrite import Reconstructor
from repro.sql.parser import parse_view
from repro.warehouse.sources import SealedSource
from repro.workloads.retail import (
    RetailConfig,
    build_retail_database,
    paper_example_rows,
    product_sales_max_view,
    product_sales_view,
)
from repro.workloads.streams import TransactionGenerator

from tests.helpers import assert_same_bag, paper_database


class TestSection11Narrative:
    def test_full_story(self):
        # 1. The warehouse designer writes the view in SQL, as on paper.
        database = build_retail_database(
            RetailConfig(
                days=12,
                stores=3,
                products=15,
                products_sold_per_day=6,
                transactions_per_product=2,
                start_year=1997,
            )
        )
        view = parse_view(
            """
            CREATE VIEW product_sales AS
            SELECT time.month, SUM(price) AS TotalPrice,
                   COUNT(*) AS TotalCount,
                   COUNT(DISTINCT brand) AS DifferentBrands
            FROM sale, time, product
            WHERE time.year = 1997
              AND sale.timeid = time.id
              AND sale.productid = product.id
            GROUP BY time.month
            """,
            database,
        )

        # 2. Algorithm 3.2 derives the three auxiliary views of Sec. 1.1.
        aux = derive_auxiliary_views(view, database)
        assert aux.tables == ("sale", "time", "product")
        assert "store" not in [a.table for a in aux]

        # 3. The view is reconstructable from the auxiliary views alone.
        reconstructor = Reconstructor(view, aux, database)
        rebuilt = reconstructor.reconstruct(aux.materialize(database))
        assert_same_bag(rebuilt, view.evaluate(database))

        # 4. Maintenance proceeds with base tables sealed off.
        source = SealedSource(database)
        maintainer = SelfMaintainer(view, source)
        source.seal()
        generator = TransactionGenerator(database, seed=97)
        for __ in range(30):
            maintainer.apply(generator.step())
        assert source.blocked_reads == 0
        source.unseal()
        assert_same_bag(maintainer.current_view(), view.evaluate(database))

        # 5. The storage argument holds on live data: the compressed
        # saledtl is much smaller than the fact table.
        fact_bytes = database.relation("sale").size_bytes()
        aux_bytes = maintainer.aux_relation("sale").size_bytes()
        assert aux_bytes < fact_bytes / 2


class TestSection32Narrative:
    def test_product_sales_max_story(self):
        database = paper_database(paper_example_rows())
        view = product_sales_max_view()

        # The auxiliary view keeps price as a grouping attribute because
        # of MAX, plus the COUNT(*) — Table 3's shape.
        aux = derive_auxiliary_views(view, database)
        sale = aux.for_table("sale")
        assert sale.plan.pinned == ("productid", "price")
        assert sale.plan.include_count

        relations = aux.materialize(database)
        # Table 3/4 instance: the paper-consistent example rows compress
        # to the six (timeid, productid, price) groups, further merged on
        # (productid, price) for this view.
        assert sorted(relations["sale"].rows) == [
            (1, 5, 1),   # product 1 @ 5: one sale (day 3)
            (1, 10, 3),  # product 1 @ 10: days 1 (x2) and 2
            (2, 5, 2),
            (2, 10, 1),
            (3, 5, 3),
        ]

        # The reconstruction view uses SUM(price*SaleCount), as printed
        # in Section 3.2.
        reconstructor = Reconstructor(view, aux, database)
        assert "SUM(saledtl.price*saledtl.cnt)" in reconstructor.to_sql()
        assert_same_bag(
            reconstructor.reconstruct(relations), view.evaluate(database)
        )

    def test_compression_shrinks_the_example_instance(self):
        database = paper_database(paper_example_rows())
        view = product_sales_view(1997)
        aux = derive_auxiliary_views(view, database)
        relations = aux.materialize(database)
        # 10 detail tuples compress into 6 groups (Tables 3 and 4).
        assert len(database.relation("sale")) == 10
        assert len(relations["sale"]) == 6
