"""The cost-based maintenance planner: correctness and adaptivity.

Four families:

1. Unit coverage of the cost primitives (planner specs, q-error, the
   re-plan threshold, the explicit shared-plan cache).
2. Hypothesis differential properties — for random GPSJ views and
   random delta streams, the cost planner must produce results
   identical to the static planner's (and to ground-truth
   recomputation) on the memory and SQLite backends, for both plan
   policies.  The cost layer only reorders provably order-insensitive
   work, so this is the load-bearing safety property.
3. The adaptive feedback loop — a deterministically planted
   misestimate must trigger exactly one re-plan, and the recompiled
   plan's estimates must converge so no further re-plans fire.
4. Statistics hygiene — an aborted transaction must leave the
   catalog's domain high-water marks and snapshots exactly as they
   were (no estimate drift after rollback), and a parallel sharded
   backend must fold every worker's observed statistics into
   ``runtime_stats()`` (the ``explain --analyze`` payload).
"""

from hypothesis import HealthCheck, given, settings, strategies as st
import pytest

from repro.backends.sharded import ShardedBackend
from repro.core.maintenance import SelfMaintainer
from repro.engine.deltas import Delta, Transaction
from repro.perf import PLANNER_QERROR
from repro.plan.cost import (
    DEFAULT_REPLAN_RATIO,
    PlannerError,
    PlannerMode,
    SharedPlanCache,
    make_planner_mode,
    q_error,
    replan_ratio_from_env,
    resolve_planner_name,
)
from repro.plan.explain import merged_stats_annotator
from repro.testing.faults import FaultInjector, InjectedFault
from repro.warehouse.warehouse import Warehouse
from repro.workloads.random_gen import random_scenario
from repro.workloads.retail import (
    RetailConfig,
    build_retail_database,
    product_sales_max_view,
    product_sales_view,
)
from repro.workloads.streams import TransactionGenerator

from tests.helpers import assert_same_bag, paper_database

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Unit coverage: specs, q-error, thresholds, shared-plan cache.
# ----------------------------------------------------------------------


class TestPlannerSpecs:
    def test_default_is_cost(self, monkeypatch):
        monkeypatch.delenv("REPRO_PLANNER", raising=False)
        assert resolve_planner_name() == "cost"
        assert make_planner_mode() is PlannerMode.COST

    def test_env_selects_static(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLANNER", "static")
        assert resolve_planner_name() == "static"
        assert make_planner_mode() is PlannerMode.STATIC

    def test_explicit_spec_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLANNER", "static")
        assert make_planner_mode("cost") is PlannerMode.COST
        assert make_planner_mode(PlannerMode.COST) is PlannerMode.COST

    def test_unknown_spec_raises(self):
        with pytest.raises(PlannerError, match="unknown planner"):
            resolve_planner_name("bogus")

    def test_maintainer_honors_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLANNER", "static")
        maintainer = SelfMaintainer(
            product_sales_view(1997), paper_database()
        )
        assert maintainer.planner_mode is PlannerMode.STATIC

    def test_naive_policy_forces_static(self):
        maintainer = SelfMaintainer(
            product_sales_view(1997),
            paper_database(),
            hotpath=False,
            planner="cost",
        )
        assert maintainer.planner_mode is PlannerMode.STATIC

    def test_replan_ratio_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPLAN_RATIO", raising=False)
        assert replan_ratio_from_env() == DEFAULT_REPLAN_RATIO
        monkeypatch.setenv("REPRO_REPLAN_RATIO", "2.5")
        assert replan_ratio_from_env() == 2.5
        monkeypatch.setenv("REPRO_REPLAN_RATIO", "0.5")
        with pytest.raises(PlannerError, match=">= 1.0"):
            replan_ratio_from_env()
        monkeypatch.setenv("REPRO_REPLAN_RATIO", "lots")
        with pytest.raises(PlannerError, match="not a number"):
            replan_ratio_from_env()


class TestQError:
    def test_symmetric(self):
        assert q_error(10, 40) == q_error(40, 10) == 4.0

    def test_perfect_estimate_scores_one(self):
        assert q_error(7, 7) == 1.0

    def test_zero_safe(self):
        assert q_error(0, 0) == 1.0
        assert q_error(0, 5) == 5.0


class TestSharedPlanCache:
    def test_admits_only_selected_keys(self):
        cache = SharedPlanCache(frozenset({"a"}))
        cache["a"] = [1, 2]
        cache["b"] = [3]
        assert "a" in cache and cache["a"] == [1, 2]
        assert "b" not in cache and cache.get("b") is None
        assert len(cache) == 1
        assert (cache.admitted, cache.rejected) == (1, 1)

    def test_empty_selection_caches_nothing(self):
        cache = SharedPlanCache(frozenset())
        cache["a"] = [1]
        assert len(cache) == 0
        assert cache.rejected == 1


# ----------------------------------------------------------------------
# Differential safety: cost-planned maintenance is result-identical to
# static-planned maintenance (and ground truth) on every backend.
# ----------------------------------------------------------------------


def _assert_all_relations_match(actual_m, expected_m, context=""):
    assert_same_bag(
        actual_m.current_view(), expected_m.current_view(), context
    )
    for table in expected_m.aux_relations():
        assert_same_bag(
            actual_m.aux_relation(table),
            expected_m.aux_relation(table),
            f"{context} aux={table}",
        )


@given(seed=st.integers(0, 10_000), steps=st.integers(1, 5))
@settings(**SETTINGS)
def test_cost_matches_static_on_memory(seed, steps):
    scenario = random_scenario(seed)
    cost_m = SelfMaintainer(scenario.view, scenario.database, planner="cost")
    static_m = SelfMaintainer(
        scenario.view, scenario.database, planner="static"
    )
    for step in range(steps):
        transaction = scenario.generator.step()
        cost_m.apply(transaction)
        static_m.apply(transaction)
        context = f"seed={seed} step={step}"
        _assert_all_relations_match(cost_m, static_m, context)
        assert_same_bag(
            cost_m.current_view(),
            scenario.view.evaluate_eager(scenario.database),
            context,
        )


@given(seed=st.integers(0, 10_000), steps=st.integers(1, 4))
@settings(**SETTINGS)
def test_cost_matches_static_on_sqlite(seed, steps):
    scenario = random_scenario(seed)
    cost_m = SelfMaintainer(
        scenario.view, scenario.database, planner="cost", backend="sqlite"
    )
    static_m = SelfMaintainer(
        scenario.view, scenario.database, planner="static"
    )
    for step in range(steps):
        transaction = scenario.generator.step()
        cost_m.apply(transaction)
        static_m.apply(transaction)
        _assert_all_relations_match(
            cost_m, static_m, f"seed={seed} step={step}"
        )


@given(seed=st.integers(0, 10_000), steps=st.integers(1, 4))
@settings(**SETTINGS)
def test_cost_indexed_matches_naive(seed, steps):
    """Both plan policies under an explicit planner spec: the NAIVE
    policy plans statically regardless, and must stay bag-identical to
    the cost-planned INDEXED pipeline."""
    scenario = random_scenario(seed)
    indexed = SelfMaintainer(scenario.view, scenario.database, planner="cost")
    naive = SelfMaintainer(
        scenario.view, scenario.database, hotpath=False, planner="cost"
    )
    for step in range(steps):
        transaction = scenario.generator.step()
        indexed.apply(transaction)
        naive.apply(transaction)
        _assert_all_relations_match(
            indexed, naive, f"seed={seed} step={step}"
        )


def test_evaluation_plans_are_planner_independent():
    """Cost choices apply only to delta plans: the view-evaluation plan
    (whose tests assert exact row order) is byte-identical either way."""
    scenario = random_scenario(4242)
    cost_m = SelfMaintainer(scenario.view, scenario.database, planner="cost")
    static_m = SelfMaintainer(
        scenario.view, scenario.database, planner="static"
    )
    assert (
        cost_m.current_view().rows == static_m.current_view().rows
    )  # exact order, not just bag equality
    planned = scenario.view.evaluate(scenario.database)
    eager = scenario.view.evaluate_eager(scenario.database)
    assert planned.rows == eager.rows


# ----------------------------------------------------------------------
# The adaptive feedback loop.
# ----------------------------------------------------------------------


def _sale_insert(sale_id):
    return Transaction.of(
        Delta("sale", inserted=((sale_id, 1, 1, 1, 10),))
    )


class TestAdaptiveReplanning:
    def make_maintainer(self):
        database = paper_database()
        view = product_sales_view(1997)
        return database, SelfMaintainer(view, database, planner="cost")

    def warm(self, database, maintainer, count=3, start=500):
        """Apply single-row sale inserts until the feedback loop has
        settled (the initial DEFAULT_DELTA_ROWS guess itself re-plans)."""
        for offset in range(count):
            tx = _sale_insert(start + offset)
            database.apply(tx)
            maintainer.apply(tx)

    def test_forced_misestimate_triggers_one_replan(self):
        database, maintainer = self.make_maintainer()
        self.warm(database, maintainer)
        before = maintainer.perf.counters["replans"]

        # Plant a wildly wrong estimate for the (sale, +1) shape; the
        # next single-row insert observes q-error 50000 >> the ratio.
        maintainer.set_estimate_hint("sale", +1, local_rows=50_000.0)
        tx = _sale_insert(600)
        database.apply(tx)
        maintainer.apply(tx)
        assert maintainer.perf.counters["replans"] == before + 1

        # The re-plan recorded the observation: the recompiled plan
        # estimates one row, so further single-row inserts converge
        # (q-error 1.0) and never re-plan again.
        after = maintainer.perf.counters["replans"]
        for sale_id in (601, 602, 603):
            tx = _sale_insert(sale_id)
            database.apply(tx)
            maintainer.apply(tx)
        assert maintainer.perf.counters["replans"] == after
        plans = maintainer.delta_plans("sale", +1)
        assert plans.stage_estimates()["local"] == 1.0

        # Correctness is untouched throughout.
        assert_same_bag(
            maintainer.current_view(),
            product_sales_view(1997).evaluate_eager(database),
        )

    def test_qerror_histogram_observes_every_checked_stage(self):
        database, maintainer = self.make_maintainer()
        self.warm(database, maintainer, count=2)
        summary = maintainer.perf.histogram_summary(PLANNER_QERROR)
        assert summary["count"] > 0

    def test_replan_emits_trace_event(self):
        from repro.obs.trace import Tracer

        database = paper_database()
        tracer = Tracer(sample_every=1)
        maintainer = SelfMaintainer(
            product_sales_view(1997),
            database,
            planner="cost",
            tracer=tracer,
        )
        tx = _sale_insert(700)
        database.apply(tx)
        maintainer.apply(tx)  # first compile guesses 32 rows, sees 1
        spans = [
            span
            for trace in tracer.traces
            for span in trace.spans
            if span.name == "replan"
        ]
        assert spans, "expected a replan trace event on the misestimate"
        assert spans[0].attrs["table"] == "sale"

    def test_static_planner_never_replans(self):
        database = paper_database()
        maintainer = SelfMaintainer(
            product_sales_view(1997), database, planner="static"
        )
        for sale_id in (800, 801, 802):
            tx = _sale_insert(sale_id)
            database.apply(tx)
            maintainer.apply(tx)
        assert maintainer.perf.counters["replans"] == 0
        assert maintainer.delta_plans("sale", +1).stage_estimates() == {
            "local": None,
            "reduce": None,
            "propagate": None,
        }

    def test_runtime_stats_survive_a_replan(self):
        """Observed per-node statistics carry over from a retired plan
        onto its recompiled replacement."""
        database, maintainer = self.make_maintainer()
        self.warm(database, maintainer, count=4)
        stats = maintainer.runtime_stats()
        records = stats["+sale"]
        total_execs = sum(r["executions"] for r in records)
        assert total_execs > 0
        # Every warm-up transaction is accounted for on the delta scan,
        # replans notwithstanding.
        delta_scans = [r for r in records if r["label"].startswith("Δscan")]
        assert delta_scans and delta_scans[0]["executions"] == 4


# ----------------------------------------------------------------------
# Statistics hygiene: rollback leaves no estimate drift.
# ----------------------------------------------------------------------


class TestRollbackStatsHygiene:
    @pytest.mark.parametrize(
        "phase", ["local-reduce", "join-reduce", "aggregate-fold", "aux-apply"]
    )
    def test_aborted_transaction_restores_domains(self, phase):
        database = paper_database()
        maintainer = SelfMaintainer(
            product_sales_view(1997), database, planner="cost"
        )
        # Warm one transaction so plans exist and domains are populated.
        tx = _sale_insert(900)
        database.apply(tx)
        maintainer.apply(tx)
        before_domains = maintainer.stats_catalog.domain_snapshot()
        before_aux = {
            table: len(relation)
            for table, relation in maintainer.aux_relations().items()
        }

        injector = FaultInjector(maintainer)
        injector.arm(phase)
        failing = Transaction.of(
            Delta(
                "sale",
                inserted=tuple(
                    (910 + i, 1 + (i % 3), 1 + (i % 2), 1, 10 + i)
                    for i in range(8)
                ),
            )
        )
        with pytest.raises(InjectedFault):
            maintainer.apply(failing)
        injector.uninstall()

        assert maintainer.stats_catalog.domain_snapshot() == before_domains, (
            f"domain high-water marks drifted after rollback in {phase}"
        )
        catalog = maintainer.stats_catalog
        for table, rows in before_aux.items():
            assert catalog.table_rows(table) == rows, (
                f"cardinality estimate for {table} stale after rollback"
            )

    def test_first_transaction_abort_restores_empty_catalog(self):
        """The plan compile happens *inside* the first transaction, so
        its domain writes must be undone with everything else."""
        database = paper_database()
        maintainer = SelfMaintainer(
            product_sales_view(1997), database, planner="cost"
        )
        assert maintainer.stats_catalog.domain_snapshot() == {}
        injector = FaultInjector(maintainer)
        injector.arm("aggregate-fold")
        with pytest.raises(InjectedFault):
            maintainer.apply(_sale_insert(950))
        injector.uninstall()
        assert maintainer.stats_catalog.domain_snapshot() == {}
        # ... and the maintainer still works afterwards.
        tx = _sale_insert(951)
        database.apply(tx)
        maintainer.apply(tx)
        assert_same_bag(
            maintainer.current_view(),
            product_sales_view(1997).evaluate_eager(database),
        )


# ----------------------------------------------------------------------
# Explicit shared-subplan selection at the warehouse.
# ----------------------------------------------------------------------


def _two_view_warehouse(planner):
    database = build_retail_database(
        RetailConfig(
            days=6,
            stores=2,
            products=8,
            products_sold_per_day=4,
            transactions_per_product=2,
            start_year=1997,
        )
    )
    warehouse = Warehouse(database, planner=planner)
    warehouse.register(product_sales_view(1997))
    warehouse.register(product_sales_max_view())
    return database, warehouse


class TestSharedSubplanSelection:
    def test_selection_is_nonempty_for_overlapping_views(self):
        __, warehouse = _two_view_warehouse("cost")
        selection = warehouse.shared_subplan_selection()
        assert isinstance(selection, frozenset)
        assert selection, "the two retail views share delta subplans"

    def test_cost_mode_admits_selected_results(self):
        database, warehouse = _two_view_warehouse("cost")
        generator = TransactionGenerator(database, seed=7)
        for __ in range(3):
            warehouse.apply(generator.step())
        cache = warehouse.last_shared_cache
        assert isinstance(cache, SharedPlanCache)
        assert cache.admitted > 0, "selected subplan results were cached"

    def test_static_mode_uses_opportunistic_dict(self):
        database, warehouse = _two_view_warehouse("static")
        generator = TransactionGenerator(database, seed=7)
        warehouse.apply(generator.step())
        assert warehouse.last_shared_cache is None

    def test_selection_matches_static_results(self):
        db_cost, cost_w = _two_view_warehouse("cost")
        db_static, static_w = _two_view_warehouse("static")
        gen_cost = TransactionGenerator(db_cost, seed=11)
        gen_static = TransactionGenerator(db_static, seed=11)
        for step in range(4):
            cost_w.apply(gen_cost.step())
            static_w.apply(gen_static.step())
            for name in cost_w.view_names:
                assert_same_bag(
                    cost_w.summary(name),
                    static_w.summary(name),
                    f"step={step} view={name}",
                )

    def test_explain_marks_cost_selection(self):
        __, warehouse = _two_view_warehouse("cost")
        report = warehouse.explain_plans()
        assert "shared across views: product_sales, product_sales_max" in report
        assert "[cost-selected]" in report

    def test_explain_static_mode_keeps_plain_marks(self):
        __, warehouse = _two_view_warehouse("static")
        report = warehouse.explain_plans()
        assert "shared across views" in report
        assert "[cost-selected]" not in report


# ----------------------------------------------------------------------
# Sharded backends: merged runtime statistics for explain --analyze.
# ----------------------------------------------------------------------


def _retail_maintainer(backend):
    database = build_retail_database(
        RetailConfig(
            days=6,
            stores=2,
            products=8,
            products_sold_per_day=4,
            transactions_per_product=2,
            start_year=1997,
        )
    )
    maintainer = SelfMaintainer(
        product_sales_view(1997), database, backend=backend
    )
    return database, maintainer


class TestShardedAnalyzeMerge:
    def test_parallel_workers_fold_into_runtime_stats(self):
        backend = ShardedBackend(n_shards=2, parallel=True)
        try:
            database, maintainer = _retail_maintainer(backend)
            generator = TransactionGenerator(database, seed=5)
            for __ in range(4):
                maintainer.apply(generator.step())
            records = maintainer.runtime_stats().get("+sale", [])
            inner = [r for r in records if r["depth"] > 0]
            assert inner, "expected inner plan nodes in the stats payload"
            assert any(r["executions"] for r in inner), (
                "worker-side observations were not merged: every inner "
                "node reports zero executions"
            )
            # The analyze annotator renders the merged numbers.
            annotator = merged_stats_annotator(maintainer)
            plans = maintainer.delta_plans("sale", +1)
            notes = [annotator(node) for node in plans.walk()]
            assert any(
                note and note.startswith("actual:") and "execs=0" not in note
                for note in notes
            )
        finally:
            backend.close()

    def test_serial_sharded_needs_no_merge(self):
        backend = ShardedBackend(n_shards=3, parallel=False)
        database, maintainer = _retail_maintainer(backend)
        generator = TransactionGenerator(database, seed=5)
        for __ in range(3):
            maintainer.apply(generator.step())
        records = maintainer.runtime_stats().get("+sale", [])
        assert any(r["executions"] for r in records if r["depth"] > 0)
