"""Tests for incremental self-maintenance (the heart of the paper).

Every scenario streams transactions into a :class:`SelfMaintainer` and
checks the maintained summary against recomputation over the live
sources — which the maintainer itself never reads after initialization.
"""

import pytest

from repro.core.derivation import derive_auxiliary_views
from repro.core.maintenance import (
    CompressedMaterialization,
    ProjectionMaterialization,
    SelfMaintainer,
    SelfMaintenanceError,
    make_materialization,
)
from repro.core.view import JoinCondition, make_view
from repro.engine.aggregates import AggregateFunction
from repro.engine.deltas import Delta, Transaction
from repro.engine.expressions import Column, Comparison, Literal
from repro.engine.operators import AggregateItem, GroupByItem
from repro.workloads.retail import product_sales_max_view, product_sales_view
from repro.workloads.snowflake import (
    build_snowflake_database,
    category_sales_by_product_view,
    category_sales_view,
)

from tests.helpers import assert_same_bag, paper_database


def check(maintainer, database, context=""):
    assert_same_bag(
        maintainer.current_view(),
        maintainer.view.evaluate(database),
        context,
    )


def run(maintainer, database, transaction, context=""):
    database.apply(transaction)
    maintainer.apply(transaction)
    check(maintainer, database, context)


class TestInitialization:
    def test_initial_view_matches_evaluation(self):
        database = paper_database()
        maintainer = SelfMaintainer(product_sales_view(1997), database)
        check(maintainer, database)

    def test_initial_aux_contents_match_definitions(self):
        database = paper_database()
        maintainer = SelfMaintainer(product_sales_view(1997), database)
        expected = maintainer.aux_set.materialize(database)
        for aux in maintainer.aux_set:
            assert_same_bag(
                maintainer.aux_relation(aux.table), expected[aux.table]
            )

    def test_detail_size_accounts_all_views(self):
        database = paper_database()
        maintainer = SelfMaintainer(product_sales_view(1997), database)
        total = sum(
            maintainer.aux_relation(t).size_bytes()
            for t in ("sale", "time", "product")
        )
        assert maintainer.detail_size_bytes() == total


class TestFactTableDeltas:
    def test_insert_into_existing_group(self):
        database = paper_database()
        maintainer = SelfMaintainer(product_sales_view(1997), database)
        run(
            maintainer,
            database,
            Transaction.of(Delta.insertion("sale", [(50, 1, 1, 1, 30)])),
        )

    def test_insert_creates_new_group(self):
        database = paper_database()
        maintainer = SelfMaintainer(product_sales_view(1997), database)
        # time 3 is month 2; a sale on a fresh (time, product) pair.
        run(
            maintainer,
            database,
            Transaction.of(Delta.insertion("sale", [(51, 3, 3, 1, 8)])),
        )

    def test_insert_filtered_by_join_reduction(self):
        database = paper_database()
        maintainer = SelfMaintainer(product_sales_view(1997), database)
        before = maintainer.aux_relation("sale").as_multiset()
        # time 4 is 1996: the sale must not enter saledtl or V.
        run(
            maintainer,
            database,
            Transaction.of(Delta.insertion("sale", [(52, 4, 1, 1, 8)])),
        )
        assert maintainer.aux_relation("sale").as_multiset() == before

    def test_delete_decrements_group(self):
        database = paper_database()
        maintainer = SelfMaintainer(product_sales_view(1997), database)
        run(
            maintainer,
            database,
            Transaction.of(Delta.deletion("sale", [(1, 1, 1, 1, 10)])),
        )

    def test_delete_kills_group(self):
        database = paper_database()
        maintainer = SelfMaintainer(product_sales_view(1997), database)
        # Sale 8 is the only month-2 sale in 1997.
        run(
            maintainer,
            database,
            Transaction.of(Delta.deletion("sale", [(8, 3, 1, 1, 5)])),
        )
        assert len(maintainer.current_view()) == 1

    def test_group_death_removes_aux_group(self):
        database = paper_database()
        maintainer = SelfMaintainer(product_sales_view(1997), database)
        run(
            maintainer,
            database,
            Transaction.of(Delta.deletion("sale", [(8, 3, 1, 1, 5)])),
        )
        keys = {(row[0], row[1]) for row in maintainer.aux_relation("sale")}
        assert (3, 1) not in keys

    def test_update_as_delete_insert(self):
        database = paper_database()
        maintainer = SelfMaintainer(product_sales_view(1997), database)
        run(
            maintainer,
            database,
            Transaction.of(
                Delta.update(
                    "sale",
                    old_rows=[(1, 1, 1, 1, 10)],
                    new_rows=[(1, 2, 1, 1, 25)],
                )
            ),
        )

    def test_delete_of_filtered_row_is_noop(self):
        database = paper_database()
        maintainer = SelfMaintainer(product_sales_view(1997), database)
        before = maintainer.current_view().as_multiset()
        # Sale 9 references 1996 and never contributed.
        run(
            maintainer,
            database,
            Transaction.of(Delta.deletion("sale", [(9, 4, 1, 1, 99)])),
        )
        assert maintainer.current_view().as_multiset() == before


class TestDimensionDeltas:
    def test_dimension_insert_with_integrity_cannot_change_view(self):
        database = paper_database()
        maintainer = SelfMaintainer(product_sales_view(1997), database)
        before = maintainer.current_view().as_multiset()
        run(
            maintainer,
            database,
            Transaction.of(Delta.insertion("product", [(9, "nb", "misc")])),
        )
        assert maintainer.current_view().as_multiset() == before
        # ...but the auxiliary view must learn the new product.
        assert 9 in {row[0] for row in maintainer.aux_relation("product")}

    def test_dimension_insert_then_referencing_fact(self):
        database = paper_database()
        maintainer = SelfMaintainer(product_sales_view(1997), database)
        run(
            maintainer,
            database,
            Transaction.of(
                Delta.insertion("product", [(9, "nb", "misc")]),
                Delta.insertion("sale", [(60, 1, 9, 1, 12)]),
            ),
        )

    def test_cascaded_dimension_delete(self):
        database = paper_database()
        maintainer = SelfMaintainer(product_sales_view(1997), database)
        sales_of_3 = [r for r in database.relation("sale").rows if r[2] == 3]
        run(
            maintainer,
            database,
            Transaction.of(
                Delta.deletion("product", [(3, "bestco", "dairy")]),
                Delta.deletion("sale", sales_of_3),
            ),
        )
        assert 3 not in {
            row[0] for row in maintainer.aux_relation("product")
        }

    def test_dimension_update_changing_preserved_attribute(self):
        # Changing product.brand (preserved via COUNT(DISTINCT brand))
        # must flow into V through the dirty-group recomputation.
        database = paper_database()
        maintainer = SelfMaintainer(product_sales_view(1997), database)
        run(
            maintainer,
            database,
            Transaction.of(
                Delta.update(
                    "product",
                    old_rows=[(3, "bestco", "dairy")],
                    new_rows=[(3, "acme", "dairy")],
                )
            ),
            "brand update collapses DifferentBrands",
        )
        by_month = {row[0]: row for row in maintainer.current_view()}
        assert by_month[1][3] == 1  # all brands now 'acme'

    def test_exposed_update_moving_row_into_view(self):
        # time.year is a local condition; declare exposed updates so the
        # fact table is not join-reduced on time, then move a 1996 day
        # into 1997 and watch V gain the 1996 sale.
        database = paper_database()
        database.table("time").exposed_updates = True
        maintainer = SelfMaintainer(product_sales_view(1997), database)
        aux_tables = {j.right_table for j in maintainer.aux_set.for_table("sale").reduced_by}
        assert "time" not in aux_tables  # no join reduction on time
        run(
            maintainer,
            database,
            Transaction.of(
                Delta.update(
                    "time",
                    old_rows=[(4, 1, 1, 1996)],
                    new_rows=[(4, 1, 3, 1997)],
                )
            ),
            "exposed update pulls the 1996 sale into view",
        )
        months = {row[0] for row in maintainer.current_view()}
        assert 3 in months

    def test_exposed_update_moving_row_out_of_view(self):
        database = paper_database()
        database.table("time").exposed_updates = True
        maintainer = SelfMaintainer(product_sales_view(1997), database)
        run(
            maintainer,
            database,
            Transaction.of(
                Delta.update(
                    "time",
                    old_rows=[(3, 1, 2, 1997)],
                    new_rows=[(3, 1, 2, 1995)],
                )
            ),
            "exposed update removes month 2 from view",
        )
        months = {row[0] for row in maintainer.current_view()}
        assert months == {1}


class TestNonCsmasMaintenance:
    def test_max_updates_incrementally_on_insert(self):
        database = paper_database()
        maintainer = SelfMaintainer(product_sales_max_view(), database)
        run(
            maintainer,
            database,
            Transaction.of(Delta.insertion("sale", [(70, 1, 1, 1, 500)])),
        )
        by_product = {row[0]: row for row in maintainer.current_view()}
        assert by_product[1][1] == 500

    def test_max_recomputed_from_aux_on_extremum_deletion(self):
        database = paper_database()
        maintainer = SelfMaintainer(product_sales_max_view(), database)
        # Product 1's maximum 1997 price comes from the price-99 sale.
        run(
            maintainer,
            database,
            Transaction.of(Delta.deletion("sale", [(9, 4, 1, 1, 99)])),
            "deleting the maximum forces recomputation from saledtl",
        )
        by_product = {row[0]: row for row in maintainer.current_view()}
        assert by_product[1][1] == 10

    def test_non_extremum_deletion_needs_no_recompute(self):
        database = paper_database()
        maintainer = SelfMaintainer(product_sales_max_view(), database)
        run(
            maintainer,
            database,
            Transaction.of(Delta.deletion("sale", [(4, 1, 3, 1, 5)])),
        )

    def test_distinct_count_insert_and_delete(self):
        database = paper_database()
        maintainer = SelfMaintainer(product_sales_view(1997), database)
        # New product with a new brand sold in month 1.
        run(
            maintainer,
            database,
            Transaction.of(
                Delta.insertion("product", [(9, "carrefour", "misc")]),
                Delta.insertion("sale", [(71, 1, 9, 1, 3)]),
            ),
            "distinct count grows",
        )
        by_month = {row[0]: row for row in maintainer.current_view()}
        assert by_month[1][3] == 3
        run(
            maintainer,
            database,
            Transaction.of(
                Delta.deletion("sale", [(71, 1, 9, 1, 3)]),
                Delta.deletion("product", [(9, "carrefour", "misc")]),
            ),
            "distinct count shrinks back",
        )
        by_month = {row[0]: row for row in maintainer.current_view()}
        assert by_month[1][3] == 2


class TestEliminatedRoot:
    def make(self):
        database = build_snowflake_database()
        view = category_sales_by_product_view()
        maintainer = SelfMaintainer(view, database)
        assert "sale" in maintainer.eliminated_tables
        return database, view, maintainer

    def test_fact_insert_without_aux(self):
        database, view, maintainer = self.make()
        run(
            maintainer,
            database,
            Transaction.of(Delta.insertion("sale", [(9001, 1, 1, 2, 100)])),
        )

    def test_fact_delete_without_aux(self):
        database, view, maintainer = self.make()
        victim = database.relation("sale").rows[0]
        run(
            maintainer,
            database,
            Transaction.of(Delta.deletion("sale", [victim])),
        )

    def test_group_death_without_aux(self):
        database, view, maintainer = self.make()
        product_id = database.relation("sale").rows[0][2]
        victims = [r for r in database.relation("sale").rows if r[2] == product_id]
        run(
            maintainer,
            database,
            Transaction.of(Delta.deletion("sale", victims)),
        )
        assert product_id not in {
            row[0] for row in maintainer.current_view()
        }

    def test_dimension_update_rewrites_groups(self):
        # The seed-146 regression: with the root eliminated, a dimension
        # update must rewrite the affected groups in place.
        database = build_snowflake_database()
        view = make_view(
            "pv",
            ("sale", "product"),
            [
                GroupByItem(Column("id", "product")),
                GroupByItem(Column("name", "product")),
                AggregateItem(
                    AggregateFunction.SUM, Column("amount", "sale"), alias="rev"
                ),
                AggregateItem(AggregateFunction.COUNT, None, alias="n"),
            ],
            joins=[JoinCondition("sale", "productid", "product", "id")],
        )
        maintainer = SelfMaintainer(view, database)
        assert "sale" in maintainer.eliminated_tables
        old = next(r for r in database.relation("product") if r[0] == 1)
        new = (old[0], old[1], "renamed_product")
        run(
            maintainer,
            database,
            Transaction.of(Delta.update("product", [old], [new])),
            "group-by attribute rewrite under eliminated root",
        )
        names = {row[1] for row in maintainer.current_view() if row[0] == 1}
        assert names <= {"renamed_product"}

    def test_group_constant_aggregate_rewrite(self):
        # SUM over a dimension attribute with the root eliminated: the
        # per-group sum is value x count and must follow the update.
        database = build_snowflake_database()
        view = make_view(
            "pv2",
            ("sale", "product", "category"),
            [
                GroupByItem(Column("id", "product")),
                AggregateItem(
                    AggregateFunction.SUM,
                    Column("margin_bps", "category"),
                    alias="margin_weight",
                ),
                AggregateItem(AggregateFunction.COUNT, None, alias="n"),
            ],
            joins=[
                JoinCondition("sale", "productid", "product", "id"),
                JoinCondition("product", "categoryid", "category", "id"),
            ],
        )
        maintainer = SelfMaintainer(view, database)
        assert "sale" in maintainer.eliminated_tables
        old = next(r for r in database.relation("category") if r[0] == 1)
        new = (old[0], old[1], old[2] + 100)
        run(
            maintainer,
            database,
            Transaction.of(Delta.update("category", [old], [new])),
            "chained group-constant rewrite through the snowflake",
        )

    def test_dimension_insert_never_changes_view(self):
        database, view, maintainer = self.make()
        before = maintainer.current_view().as_multiset()
        run(
            maintainer,
            database,
            Transaction.of(Delta.insertion("product", [(999, 1, "fresh")])),
        )
        assert maintainer.current_view().as_multiset() == before


class TestErrorPaths:
    def test_deleting_from_dead_group_raises(self):
        database = paper_database()
        maintainer = SelfMaintainer(product_sales_view(1997), database)
        # Sale 8 is the only month-2 sale: its deletion kills the group.
        maintainer.apply(
            Transaction.of(Delta.deletion("sale", [(8, 3, 1, 1, 5)]))
        )
        with pytest.raises(SelfMaintenanceError, match="unknown group"):
            maintainer.apply(
                Transaction.of(Delta.deletion("sale", [(999, 3, 1, 1, 7)]))
            )

    def test_double_deletion_detected_by_aux_view(self):
        database = paper_database()
        maintainer = SelfMaintainer(product_sales_view(1997), database)
        # Sale 3 is alone in its (timeid, productid) auxiliary group, but
        # its month-1 view group survives the first deletion — the second
        # deletion is caught by the compressed auxiliary view.
        t = Transaction.of(Delta.deletion("sale", [(3, 1, 2, 1, 10)]))
        maintainer.apply(t)
        with pytest.raises(SelfMaintenanceError, match="absent group"):
            maintainer.apply(t)


class TestMaterializations:
    def test_factory_dispatch(self):
        database = paper_database()
        aux = derive_auxiliary_views(product_sales_view(1997), database)
        assert isinstance(
            make_materialization(aux.for_table("sale")),
            CompressedMaterialization,
        )
        assert isinstance(
            make_materialization(aux.for_table("time")),
            ProjectionMaterialization,
        )

    def test_compressed_load_rejects_wrong_schema(self):
        database = paper_database()
        aux = derive_auxiliary_views(product_sales_view(1997), database)
        sale = make_materialization(aux.for_table("sale"))
        with pytest.raises(SelfMaintenanceError, match="schema"):
            sale.load(database.relation("time"))

    def test_compressed_roundtrip(self):
        database = paper_database()
        aux = derive_auxiliary_views(product_sales_view(1997), database)
        sale_aux = aux.for_table("sale")
        materialization = make_materialization(sale_aux)
        computed = sale_aux.compute(database, aux_set=aux)
        materialization.load(computed)
        assert_same_bag(materialization.relation(), computed)

    def test_compressed_deletion_from_absent_group(self):
        database = paper_database()
        aux = derive_auxiliary_views(product_sales_view(1997), database)
        sale_aux = aux.for_table("sale")
        materialization = make_materialization(sale_aux)
        materialization.load(sale_aux.compute(database, aux_set=aux))
        with pytest.raises(SelfMaintenanceError, match="absent group"):
            materialization.apply([(999, 3, 3, 1, 1)], sign=-1)


class TestMultiViewConsistency:
    def test_two_maintainers_one_stream(self):
        database = paper_database()
        views = [product_sales_view(1997), product_sales_max_view()]
        maintainers = [SelfMaintainer(v, database) for v in views]
        transactions = [
            Transaction.of(Delta.insertion("sale", [(80, 1, 2, 1, 60)])),
            Transaction.of(Delta.deletion("sale", [(3, 1, 2, 1, 10)])),
            Transaction.of(
                Delta.insertion("product", [(9, "zeta", "misc")]),
                Delta.insertion("sale", [(81, 2, 9, 1, 4)]),
            ),
        ]
        for transaction in transactions:
            database.apply(transaction)
            for maintainer in maintainers:
                maintainer.apply(transaction)
        for maintainer in maintainers:
            check(maintainer, database)


class TestSnowflakeMaintenance:
    def test_full_snowflake_stream(self):
        database = build_snowflake_database()
        maintainer = SelfMaintainer(category_sales_view(), database)
        new_sale = (9000, 1, 1, 2, 500)
        transactions = [
            Transaction.of(Delta.insertion("sale", [new_sale])),
            Transaction.of(
                Delta.insertion("category", [(99, "food", 500)]),
                Delta.insertion("product", [(999, 99, "fresh")]),
                Delta.insertion("sale", [(9001, 2, 999, 1, 123)]),
            ),
            Transaction.of(Delta.deletion("sale", [new_sale])),
        ]
        for transaction in transactions:
            database.apply(transaction)
            maintainer.apply(transaction)
            check(maintainer, database)
