"""The observability layer: metrics registry, tracing, runtime stats.

Covers the ``repro.obs`` package itself (histogram math, Prometheus
exposition, JSONL round-trips, span-tree invariants) and its threading
through the stack: :class:`~repro.perf.PerfStats` as a registry façade,
maintainer tracing with per-transaction histograms, plan-node
``ActualStats`` behind ``explain --analyze``, and the warehouse
metrics surface.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.maintenance import SelfMaintainer
from repro.engine.deltas import Delta, Transaction
from repro.obs.metrics import (
    DELTA_ROWS_BUCKETS,
    LATENCY_MS_BUCKETS,
    Histogram,
    MetricsRegistry,
)
from repro.obs.stats import ActualStats, collect_node_stats
from repro.obs.trace import Trace, Tracer, read_trace_jsonl
from repro.perf import (
    PHASES,
    TXN_DELTA_ROWS,
    TXN_LATENCY_MS,
    TXN_ROWS_PER_SEC,
    PerfStats,
)
from repro.testing.faults import FaultInjector, InjectedFault
from repro.warehouse.deferred import DeferredMaintainer
from repro.warehouse.warehouse import Warehouse
from repro.workloads.retail import (
    RetailConfig,
    build_retail_database,
    product_sales_view,
)
from repro.workloads.streams import TransactionGenerator

from tests.helpers import assert_same_bag

SETTINGS = dict(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

#: Phase spans whose row counts the maintainer always fills in.
COUNTED_PHASES = frozenset(
    ("coalesce", "validate", "local-reduce", "join-reduce",
     "aggregate-fold", "aux-apply")
)


def small_retail():
    config = RetailConfig(
        days=6, stores=2, products=15, products_sold_per_day=6,
        start_year=1997, seed=4,
    )
    return build_retail_database(config)


def sale_insert(key: int) -> Transaction:
    """A minimal valid fact insertion against :func:`small_retail`."""
    return Transaction.of(Delta("sale", ((key, 1, 1, 1, 42),), ()))


def run_stream(maintainer, database, count=8, seed=3):
    """Drive random valid transactions, ending with a guaranteed fact
    insertion so the sale maintenance pipeline definitely ran."""
    generator = TransactionGenerator(database, seed=seed)
    for __ in range(count - 1):
        transaction = generator.next_transaction(update_probability=0.0)
        database.apply(transaction)
        maintainer.apply(transaction)
    guaranteed = sale_insert(990_000 + seed)
    database.apply(guaranteed)
    maintainer.apply(guaranteed)


# ----------------------------------------------------------------------
# Histograms.
# ----------------------------------------------------------------------


class TestHistogram:
    def test_counts_and_sum(self):
        h = Histogram("h", (), (1, 2, 4))
        for value in (0.5, 2.0, 3.0, 100.0):
            h.observe(value)
        assert h.count == 4
        assert h.total == 105.5
        # Bounds are upper-inclusive; the last bucket is +Inf overflow.
        assert h.bucket_counts == [1, 1, 1, 1]

    def test_quantiles_clamped_to_observation(self):
        h = Histogram("h", (), LATENCY_MS_BUCKETS)
        h.observe(3.0)
        # A single observation reports itself at every percentile.
        for q in (0.5, 0.95, 0.99):
            assert h.quantile(q) == pytest.approx(3.0)

    def test_empty_summary(self):
        summary = Histogram("h", (), DELTA_ROWS_BUCKETS).summary()
        assert summary["count"] == 0
        assert summary["p50"] is None and summary["min"] is None

    def test_bounds_must_ascend(self):
        with pytest.raises(ValueError):
            Histogram("h", (), (4, 2, 1))

    def test_merge_requires_same_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", (), (1, 2)).merge(Histogram("h", (), (1, 3)))

    @given(values=st.lists(st.floats(0.01, 9_000), min_size=1, max_size=60))
    @settings(**SETTINGS)
    def test_quantiles_bounded_by_observations(self, values):
        h = Histogram("h", (), LATENCY_MS_BUCKETS)
        for value in values:
            h.observe(value)
        for q in (0.5, 0.95, 0.99):
            assert min(values) <= h.quantile(q) <= max(values)
        summary = h.summary()
        assert summary["sum"] == pytest.approx(math.fsum(values))
        assert summary["min"] == min(values)
        assert summary["max"] == max(values)


# ----------------------------------------------------------------------
# Registry and Prometheus exposition.
# ----------------------------------------------------------------------


def parse_prometheus(text: str) -> dict:
    """Minimal exposition-format check; returns ``{types, samples}``."""
    types: dict[str, str] = {}
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            marker, name, kind = line[1:].split()
            assert marker == "TYPE"
            types[name] = kind
            continue
        name_and_labels, value = line.rsplit(" ", 1)
        samples[name_and_labels] = float(value)
        base = name_and_labels.split("{", 1)[0]
        family = base
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix):
                family = base[: -len(suffix)]
        assert family in types or base in types, (
            f"sample {name_and_labels!r} has no # TYPE header"
        )
    return {"types": types, "samples": samples}


class TestRegistry:
    def test_counter_monotonic_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("repro_widgets_total").inc(3)
        with pytest.raises(ValueError):
            registry.counter("repro_widgets_total").inc(-1)
        assert registry.counter("repro_widgets_total").value == 3
        registry.gauge("repro_depth").set(7)
        registry.gauge("repro_depth").inc(-2)
        assert registry.gauge("repro_depth").value == 5

    def test_counter_group_is_live(self):
        registry = MetricsRegistry()
        group = registry.counter_group("repro_events_total", "event")
        group["x"] += 2
        assert 'repro_events_total{event="x"} 2' in registry.render_prometheus()
        registry.reset()
        assert group["x"] == 0  # same Counter object, cleared in place
        group["x"] += 5
        assert 'event="x"} 5' in registry.render_prometheus()

    def test_prometheus_parses_and_buckets_cumulative(self):
        registry = MetricsRegistry()
        h = registry.histogram("repro_latency_ms", LATENCY_MS_BUCKETS)
        for value in (0.2, 3.0, 40.0, 999.0):
            h.observe(value)
        registry.counter("repro_txns_total", view="v").inc()
        parsed = parse_prometheus(registry.render_prometheus())
        assert parsed["types"]["repro_latency_ms"] == "histogram"
        assert parsed["types"]["repro_txns_total"] == "counter"
        buckets = [
            value
            for key, value in parsed["samples"].items()
            if key.startswith("repro_latency_ms_bucket")
        ]
        assert buckets == sorted(buckets)  # cumulative series
        assert buckets[-1] == parsed["samples"]["repro_latency_ms_count"] == 4

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("repro_odd_total", phase='a"b\\c').inc()
        rendered = registry.render_prometheus()
        assert '\\"b' in rendered and "\\\\c" in rendered

    def test_jsonl_snapshot(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("repro_a_total").inc(2)
        registry.gauge("repro_g").set(1)
        registry.histogram("repro_h", (1, 2)).observe(1.5)
        path = tmp_path / "metrics.jsonl"
        registry.write_jsonl(path)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert {r["type"] for r in records} == {"counter", "gauge", "histogram"}
        histogram = next(r for r in records if r["type"] == "histogram")
        assert histogram["count"] == 1 and histogram["buckets"]["2"] == 1

    def test_merge_sums_every_kind(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for registry, amount in ((a, 1), (b, 4)):
            registry.counter("repro_c_total").inc(amount)
            registry.counter_group("repro_e_total", "event")["x"] += amount
            registry.gauge("repro_g").set(amount)
            registry.histogram("repro_h", (1, 10)).observe(amount)
        a.merge(b)
        assert a.counter("repro_c_total").value == 5
        assert a.counter_group("repro_e_total", "event")["x"] == 5
        assert a.gauge("repro_g").value == 5
        h = a.histogram("repro_h", (1, 10))
        assert h.count == 2 and h.minimum == 1 and h.maximum == 4


# ----------------------------------------------------------------------
# PerfStats façade (including the render/snapshot satellite fixes).
# ----------------------------------------------------------------------


def make_perf(counters, seconds, observations):
    perf = PerfStats()
    for name, amount in counters.items():
        perf.count(name, amount)
    for phase, value in seconds.items():
        perf.seconds[phase] += value
    for value in observations:
        perf.observe(TXN_LATENCY_MS, value)
    return perf


def copy_perf(perf: PerfStats) -> PerfStats:
    duplicate = PerfStats()
    duplicate.merge(perf)
    return duplicate


def perf_state(perf: PerfStats) -> tuple:
    summary = perf.histogram_summary(TXN_LATENCY_MS)
    return (
        dict(perf.counters),
        dict(perf.seconds),
        summary["count"],
        summary["sum"],
    )


# Exact binary fractions (multiples of 1/256) keep float addition exact,
# so merge associativity can be asserted with ==, not approx.
exact_floats = st.integers(0, 512).map(lambda n: n / 256.0)

perf_strategy = st.builds(
    make_perf,
    counters=st.dictionaries(
        st.sampled_from(["transactions", "rollbacks", "index_probes"]),
        st.integers(0, 50),
        max_size=3,
    ),
    seconds=st.dictionaries(
        st.sampled_from(["validate", "coalesce", "plan:x"]),
        exact_floats,
        max_size=3,
    ),
    observations=st.lists(exact_floats.map(lambda v: v + 0.125), max_size=6),
)


class TestPerfStats:
    def test_render_aligns_long_phase_names(self):
        perf = PerfStats()
        perf.seconds["a-very-long-phase-name-over-sixteen-chars"] += 0.001
        perf.seconds["validate"] += 0.002
        perf.count("a_counter_with_quite_a_long_name", 3)
        perf.count("x")
        lines = perf.render().splitlines()
        timing = lines[1:lines.index("counters:")]
        counter = lines[lines.index("counters:") + 1:]
        # Columns are sized from the longest name, so every value line of
        # a section has identical width — nothing overflows its column.
        assert len(timing) == 2 and len(counter) == 2
        assert len({len(line) for line in timing}) == 1
        assert len({len(line) for line in counter}) == 1

    def test_snapshot_timings_follow_phase_order(self):
        perf = PerfStats()
        for phase in ("rollback", "validate", "coalesce", "plan:z", "plan:a"):
            perf.seconds[phase] += 0.001
        ordered = list(perf.snapshot()["timings_ms"])
        assert ordered == ["coalesce", "validate", "rollback", "plan:a", "plan:z"]
        known = [p for p in ordered if p in PHASES]
        assert known == [p for p in PHASES if p in known]

    def test_fault_injection_timer_hook_still_works(self):
        """The ``timer`` seam the fault injector overrides must survive
        the registry refactor: a subclassed timer still sees every phase
        and still lands its time in the (registry-owned) seconds store."""
        database = small_retail()
        maintainer = SelfMaintainer(product_sales_view(), database)
        injector = FaultInjector(maintainer).arm("local-reduce")
        with pytest.raises(InjectedFault):
            maintainer.apply(sale_insert(990_100))
        injector.uninstall()
        assert maintainer.perf.counters["rollbacks"] == 1
        assert maintainer.perf.seconds["rollback"] >= 0.0

    @given(a=perf_strategy, b=perf_strategy)
    @settings(**SETTINGS)
    def test_merge_commutative(self, a, b):
        left, right = copy_perf(a), copy_perf(b)
        left.merge(b)
        right.merge(a)
        assert perf_state(left) == perf_state(right)

    @given(a=perf_strategy, b=perf_strategy, c=perf_strategy)
    @settings(**SETTINGS)
    def test_merge_associative(self, a, b, c):
        left = copy_perf(a)
        left.merge(b)
        left.merge(c)
        bc = copy_perf(b)
        bc.merge(c)
        right = copy_perf(a)
        right.merge(bc)
        assert perf_state(left) == perf_state(right)


# ----------------------------------------------------------------------
# Tracing.
# ----------------------------------------------------------------------


class TestTracer:
    def test_sampling(self):
        tracer = Tracer(sample_every=3, errors_always=False)
        sampled = [tracer.begin("t") is not None for __ in range(9)]
        assert sampled == [True, False, False] * 3
        assert Tracer(sample_every=0).begin("t") is None
        with pytest.raises(ValueError):
            Tracer(sample_every=-1)

    def test_head_sampling_pattern_with_shadow_traces(self):
        # With error tail-sampling on (the default), every begin returns
        # a trace, but only the head-sampled 1-in-N carry sampled=True
        # — and clean shadows are discarded at finish.
        tracer = Tracer(sample_every=3)
        heads = []
        for __ in range(9):
            trace = tracer.begin("t")
            heads.append(trace.sampled)
            tracer.finish(trace)
        assert heads == [True, False, False] * 3
        assert tracer.sampled == 3
        assert len(tracer.traces) == 3
        assert all(t.sampled for t in tracer.traces)

    def test_error_transactions_always_retained(self):
        tracer = Tracer(sample_every=1000)
        kept = tracer.begin("t")  # head-sampled
        tracer.finish(kept)
        for index in range(5):
            shadow = tracer.begin("t", attempt=index)
            assert shadow is not None and not shadow.sampled
            if index == 3:
                with pytest.raises(RuntimeError):
                    with shadow.span("validate", kind="phase"):
                        raise RuntimeError("boom")
                tracer.finish(shadow, status="error")
            else:
                tracer.finish(shadow)
        labels = [(t.sampled, t.status) for t in tracer.traces]
        assert labels == [(True, "ok"), (False, "error")]
        assert tracer.retained_errors == 1
        assert tracer.sampled == 1

    def test_max_traces_ring(self):
        tracer = Tracer(sample_every=1, max_traces=2)
        for __ in range(5):
            tracer.finish(tracer.begin("t"))
        assert len(tracer.traces) == 2
        assert tracer.sampled == 5

    def test_span_tree_and_error_flag(self):
        trace = Trace(0, "txn")
        with pytest.raises(RuntimeError):
            with trace.span("validate", kind="phase"):
                with trace.span("inner"):
                    raise RuntimeError("boom")
        trace.finish("error")
        assert [s.name for s in trace.spans] == ["txn", "validate", "inner"]
        assert trace.spans[1].error and trace.spans[2].error
        assert trace.spans[2].phase == "validate"  # inherited from parent
        assert trace.root.attrs["status"] == "error"
        assert trace.status == "error"

    def test_maintained_stream_trace_invariants(self, tmp_path):
        database = small_retail()
        tracer = Tracer(sample_every=1)
        maintainer = SelfMaintainer(
            product_sales_view(), database, tracer=tracer
        )
        run_stream(maintainer, database, count=8)
        assert tracer.sampled == 8
        path = tmp_path / "traces.jsonl"
        tracer.export_jsonl(path)
        restored = read_trace_jsonl(path)
        assert len(restored) == 8
        phase_names = set()
        plan_spans = 0
        for original, back in zip(tracer.traces, restored):
            assert back.to_dicts() == original.to_dicts()  # exact round-trip
            ids = {span.span_id for span in back.spans}
            for span in back.spans:
                assert span.duration_ms >= 0.0
                assert span.phase
                if span.parent_id is None:
                    assert span.kind == "transaction"
                    assert span.rows_in is not None
                else:
                    assert span.parent_id in ids
                if span.kind == "phase":
                    phase_names.add(span.name)
                    if span.name in COUNTED_PHASES:
                        assert span.rows_in is not None
                        assert span.rows_out is not None
                if span.kind == "plan":
                    plan_spans += 1
        assert {"coalesce", "validate", "local-reduce", "join-reduce"} <= (
            phase_names
        )
        assert plan_spans > 0  # plan nodes nested under their phases

    def test_failed_transaction_trace_has_rollback_span(self):
        database = small_retail()
        tracer = Tracer(sample_every=1)
        maintainer = SelfMaintainer(
            product_sales_view(), database, tracer=tracer
        )
        FaultInjector(maintainer).arm("join-reduce")
        with pytest.raises(InjectedFault):
            maintainer.apply(sale_insert(990_200))
        last = tracer.last
        assert last is not None and last.status == "error"
        names = [span.name for span in last.spans]
        assert "rollback" in names
        failed = next(s for s in last.spans if s.name == "join-reduce")
        assert failed.error

    def test_render_contains_bars_rows_and_status(self):
        database = small_retail()
        tracer = Tracer(sample_every=1)
        maintainer = SelfMaintainer(
            product_sales_view(), database, tracer=tracer
        )
        maintainer.apply(sale_insert(990_300))
        rendered = tracer.slowest().render()
        assert "txn:product_sales" in rendered
        assert "#" in rendered
        assert "rows" in rendered
        assert "status=ok" in rendered

    def test_tracing_does_not_change_results(self):
        plain_db, traced_db = small_retail(), small_retail()
        plain = SelfMaintainer(product_sales_view(), plain_db)
        traced = SelfMaintainer(
            product_sales_view(), traced_db, tracer=Tracer(sample_every=1)
        )
        run_stream(plain, plain_db, count=6)
        run_stream(traced, traced_db, count=6)
        assert_same_bag(plain.current_view(), traced.current_view())


# ----------------------------------------------------------------------
# Plan-node runtime statistics.
# ----------------------------------------------------------------------


class TestActualStats:
    def test_accumulator_math(self):
        stats = ActualStats()
        stats.record(10, 0.5)
        stats.record(None, 0.25)
        stats.record_reuse()
        assert stats.executions == 2
        assert stats.mean_rows_out == 5.0
        assert stats.reuses == 1
        other = ActualStats()
        other.record(4, 0.0)
        stats.merge(other)
        assert stats.rows_out_total == 14 and stats.executions == 3
        assert "actual: execs=3" in stats.describe()
        stats.reset()
        assert stats.describe() is None

    def test_delta_plan_stats_accumulate(self):
        database = small_retail()
        maintainer = SelfMaintainer(product_sales_view(), database)
        run_stream(maintainer, database, count=8)
        runtime = maintainer.runtime_stats()
        assert "+sale" in runtime
        executed = [
            record
            for records in runtime.values()
            for record in records
            if record["executions"] > 0
        ]
        assert executed, "no plan node recorded an execution"
        for record in executed:
            assert record["total_ms"] >= 0.0
            assert record["rows_out"] >= record["rows_out_max"] >= 0
        labels = {record["label"] for record in runtime["+sale"]}
        assert any(label.startswith("Δscan") for label in labels)

    def test_collect_node_stats_unique_preorder(self):
        database = small_retail()
        maintainer = SelfMaintainer(product_sales_view(), database)
        plans = maintainer.delta_plans("sale", +1)
        records = collect_node_stats(plans.roots()[0])
        assert records[0]["depth"] == 0
        # One record per unique node: shared subtrees are visited once.
        assert len(records) == len(list(plans.walk()))

    def test_reset_runtime_stats(self):
        database = small_retail()
        maintainer = SelfMaintainer(product_sales_view(), database)
        run_stream(maintainer, database, count=4)
        plans = maintainer.delta_plans("sale", +1)
        assert any(r["executions"] for r in plans.runtime_stats())
        plans.reset_runtime_stats()
        assert all(not r["executions"] for r in plans.runtime_stats())

    def test_warehouse_runtime_stats_and_explain_analyze(self):
        database = small_retail()
        warehouse = Warehouse(database, [product_sales_view()])
        transaction = sale_insert(990_400)
        database.apply(transaction)
        warehouse.apply(transaction)
        per_view = warehouse.runtime_stats()
        assert set(per_view) == {"product_sales"}
        assert warehouse.runtime_stats("product_sales") == (
            per_view["product_sales"]
        )
        from repro.plan.explain import maintainer_plan_report, stats_annotator

        report = maintainer_plan_report(
            warehouse.maintainer("product_sales"), database, stats_annotator
        )
        assert "actual: execs=" in report


# ----------------------------------------------------------------------
# Maintainer histograms and the warehouse metrics surface.
# ----------------------------------------------------------------------


class TestWarehouseObservability:
    def test_txn_histograms_observe_every_success(self):
        database = small_retail()
        maintainer = SelfMaintainer(product_sales_view(), database)
        run_stream(maintainer, database, count=7)
        for name in (TXN_LATENCY_MS, TXN_DELTA_ROWS, TXN_ROWS_PER_SEC):
            summary = maintainer.perf.histogram_summary(name)
            assert summary["count"] == 7, name
        # Failed transactions do not observe.
        injector = FaultInjector(maintainer).arm("local-reduce")
        with pytest.raises(InjectedFault):
            maintainer.apply(sale_insert(990_500))
        injector.uninstall()
        summary = maintainer.perf.histogram_summary(TXN_LATENCY_MS)
        assert summary["count"] == 7

    def test_perf_report_merges_all_views(self):
        database = small_retail()
        warehouse = Warehouse(database, [product_sales_view()])
        transaction = sale_insert(990_600)
        database.apply(transaction)
        warehouse.apply(transaction)
        merged = PerfStats()
        total = 0
        for name in warehouse.view_names:
            perf = warehouse.maintainer(name).perf
            merged.merge(perf)
            total += perf.counters["transactions"]
        assert warehouse.perf_report() == merged.render()
        assert merged.counters["transactions"] == total == 1
        # The per-view form renders just that maintainer.
        assert warehouse.perf_report("product_sales") == (
            warehouse.maintainer("product_sales").perf.render()
        )

    def test_metrics_text_parses_and_includes_compile_cache(self):
        database = small_retail()
        warehouse = Warehouse(database, [product_sales_view()])
        transaction = sale_insert(990_700)
        database.apply(transaction)
        warehouse.apply(transaction)
        text = warehouse.metrics_text()
        parsed = parse_prometheus(text)
        assert parsed["types"]["repro_maintenance_events_total"] == "counter"
        assert parsed["types"]["repro_phase_seconds_total"] == "counter"
        assert parsed["types"][TXN_LATENCY_MS] == "histogram"
        assert any(
            key.startswith("repro_compile_cache_") for key in parsed["samples"]
        )
        # Export merges into a fresh registry: a snapshot, not a drain.
        assert warehouse.metrics_text() == text

    def test_deferred_gauge_and_refresh_histogram(self):
        database = small_retail()
        maintainer = SelfMaintainer(product_sales_view(), database)
        deferred = DeferredMaintainer(maintainer)
        gauge = maintainer.perf.registry.gauge(
            "repro_deferred_pending_transactions", view="product_sales"
        )
        for key in (990_800, 990_801, 990_802):
            transaction = sale_insert(key)
            database.apply(transaction)
            deferred.apply(transaction)
        assert gauge.value == deferred.pending == 3
        stats = deferred.refresh()
        assert gauge.value == 0
        summary = maintainer.perf.histogram_summary(
            "repro_refresh_propagated_rows"
        )
        assert summary["count"] == 1
        assert summary["min"] == stats.propagated_rows
