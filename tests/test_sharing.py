"""Tests for shared detail data across classes of views (Section 4)."""

import pytest

from repro.core.derivation import derive_auxiliary_views
from repro.core.sharing import (
    SharingError,
    materialize_from_merged,
    merge_views,
    sharing_report,
)
from repro.core.view import JoinCondition, make_view
from repro.engine.aggregates import AggregateFunction
from repro.engine.expressions import Column, Comparison, Literal
from repro.engine.operators import AggregateItem, GroupByItem
from repro.workloads.retail import (
    RetailConfig,
    build_retail_database,
    product_sales_max_view,
    product_sales_view,
)

from tests.helpers import assert_same_bag, paper_database


def monthly_revenue_view():
    return make_view(
        "monthly_revenue",
        ("sale", "time"),
        [
            GroupByItem(Column("month", "time")),
            AggregateItem(
                AggregateFunction.SUM, Column("price", "sale"), alias="rev"
            ),
            AggregateItem(AggregateFunction.COUNT, None, alias="n"),
        ],
        selection=[Comparison("=", Column("year", "time"), Literal(1997))],
        joins=[JoinCondition("sale", "timeid", "time", "id")],
    )


def store_revenue_view():
    return make_view(
        "store_revenue",
        ("sale", "store"),
        [
            GroupByItem(Column("city", "store")),
            AggregateItem(
                AggregateFunction.AVG, Column("price", "sale"), alias="avg_p"
            ),
        ],
        joins=[JoinCondition("sale", "storeid", "store", "id")],
    )


class TestMerge:
    def test_union_of_tables(self):
        database = paper_database()
        shared = merge_views(
            [monthly_revenue_view(), store_revenue_view()], database
        )
        assert {m.table for m in shared.merged} == {"sale", "time", "store"}

    def test_merged_sale_plan_unions_attributes(self):
        database = paper_database()
        shared = merge_views(
            [monthly_revenue_view(), store_revenue_view()], database
        )
        sale = shared.for_table("sale")
        # timeid from view 1, storeid from view 2, price folded by both.
        assert set(sale.plan.pinned) == {"timeid", "storeid"}
        assert sale.plan.folded_sums == ("price",)
        assert sale.serves == ("monthly_revenue", "store_revenue")

    def test_disjunction_of_local_conditions(self):
        database = paper_database()
        v96 = monthly_revenue_view().with_name("rev96")
        v96 = make_view(
            "rev96",
            v96.tables,
            v96.projection,
            [Comparison("=", Column("year", "time"), Literal(1996))],
            v96.joins,
        )
        shared = merge_views([monthly_revenue_view(), v96], database)
        time = shared.for_table("time")
        assert time.local_condition is not None
        sql = time.local_condition.to_sql()
        assert "1997" in sql and "1996" in sql and "OR" in sql

    def test_unconditioned_view_opens_the_filter(self):
        database = paper_database()
        no_filter = make_view(
            "all_years",
            ("sale", "time"),
            [
                GroupByItem(Column("month", "time")),
                AggregateItem(AggregateFunction.COUNT, None, alias="n"),
            ],
            joins=[JoinCondition("sale", "timeid", "time", "id")],
        )
        shared = merge_views([monthly_revenue_view(), no_filter], database)
        assert shared.for_table("time").local_condition is None

    def test_condition_attributes_are_pinned(self):
        # year must be stored in the shared timedtl so each view's filter
        # stays evaluable.
        database = paper_database()
        v96 = make_view(
            "rev96",
            ("sale", "time"),
            [
                GroupByItem(Column("month", "time")),
                AggregateItem(AggregateFunction.COUNT, None, alias="n"),
            ],
            [Comparison("=", Column("year", "time"), Literal(1996))],
            [JoinCondition("sale", "timeid", "time", "id")],
        )
        shared = merge_views([monthly_revenue_view(), v96], database)
        assert "year" in shared.for_table("time").plan.pinned

    def test_non_csmas_pins_in_merged_view(self):
        database = paper_database()
        shared = merge_views(
            [product_sales_view(1997), product_sales_max_view()], database
        )
        sale = shared.for_table("sale")
        assert "price" in sale.plan.pinned  # MAX in the second view
        assert sale.plan.folded_sums == ()

    def test_errors(self):
        database = paper_database()
        with pytest.raises(SharingError, match="no views"):
            merge_views([], database)
        with pytest.raises(SharingError, match="duplicate"):
            merge_views(
                [monthly_revenue_view(), monthly_revenue_view()], database
            )


class TestRollupCorrectness:
    """Each view's own auxiliary views must be derivable from the shared
    detail tuple-for-tuple — the soundness of sharing."""

    def views(self):
        return [
            product_sales_view(1997),
            monthly_revenue_view(),
            store_revenue_view(),
        ]

    def test_per_view_aux_recovered_from_shared(self):
        database = build_retail_database(
            RetailConfig(
                days=20,
                stores=3,
                products=25,
                products_sold_per_day=10,
                transactions_per_product=2,
                start_year=1997,
            )
        )
        views = self.views()
        shared = merge_views(views, database)
        shared_relations = shared.materialize(database)
        for view in views:
            aux_set = derive_auxiliary_views(view, database)
            direct = aux_set.materialize(database)
            from_shared = materialize_from_merged(
                aux_set, shared, shared_relations
            )
            for table in direct:
                assert_same_bag(
                    from_shared[table],
                    direct[table],
                    f"{view.name}/{table}",
                )

    def test_rollup_with_degenerate_target(self):
        # product_sales_max pins price: its saledtl is compressed but
        # groups more finely; the shared view (merged with product_sales)
        # pins price too, so the rollup must reweight sums by counts.
        database = paper_database()
        views = [product_sales_view(1997), product_sales_max_view()]
        shared = merge_views(views, database)
        shared_relations = shared.materialize(database)
        for view in views:
            aux_set = derive_auxiliary_views(view, database)
            direct = aux_set.materialize(database)
            from_shared = materialize_from_merged(
                aux_set, shared, shared_relations
            )
            for table in direct:
                assert_same_bag(from_shared[table], direct[table])


class TestSharingReport:
    def test_sharing_saves_storage(self):
        database = build_retail_database(
            RetailConfig(
                days=20,
                stores=3,
                products=25,
                products_sold_per_day=15,
                transactions_per_product=3,
                start_year=1997,
            )
        )
        views = [product_sales_view(1997), monthly_revenue_view()]
        aux_sets = [derive_auxiliary_views(v, database) for v in views]
        report = sharing_report(views, aux_sets, database)
        assert report.shared_bytes < report.total_individual
        assert report.savings_factor > 1
        assert set(report.individual_bytes) == {
            "product_sales", "monthly_revenue",
        }

    def test_sql_rendering(self):
        database = paper_database()
        shared = merge_views(
            [monthly_revenue_view(), store_revenue_view()], database
        )
        sql = shared.to_sql()
        assert "CREATE VIEW saleshared AS" in sql
        assert "SUM(sale.price) AS sum_price" in sql
