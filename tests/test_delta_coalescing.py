"""Delta coalescing: churn cancels, and cancelling never changes state.

Satellite properties of the maintenance hot path:

* deleting and re-inserting the very same row within one transaction is
  a no-op on the summary view and on *every* auxiliary view,
* a maintainer with coalescing (``hotpath=True``) and one without
  (``hotpath=False``) reach bit-identical state on any valid stream.
"""

from collections import Counter

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.maintenance import SelfMaintainer
from repro.engine.deltas import Delta, Transaction
from repro.workloads.random_gen import random_scenario
from repro.workloads.retail import paper_mini_database, product_sales_view

from tests.helpers import assert_same_bag

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def test_delta_coalesced_cancels_multiset_minimum():
    delta = Delta(
        "t",
        inserted=((1, 2), (1, 2), (3, 4)),
        deleted=((1, 2), (5, 6)),
    )
    coalesced = delta.coalesced()
    assert coalesced.inserted == ((1, 2), (3, 4))
    assert coalesced.deleted == ((5, 6),)
    # Net effect (insertions minus deletions) is untouched.
    assert Counter(delta.inserted) - Counter(delta.deleted) == Counter(
        coalesced.inserted
    ) - Counter(coalesced.deleted)
    assert Counter(delta.deleted) - Counter(delta.inserted) == Counter(
        coalesced.deleted
    ) - Counter(coalesced.inserted)


def test_delta_coalesced_is_identity_when_nothing_cancels():
    delta = Delta("t", inserted=((1,),), deleted=((2,),))
    assert delta.coalesced() is delta
    transaction = Transaction.of(delta)
    assert transaction.coalesced() is transaction


rows_strategy = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 2)), max_size=8
)


@given(inserted=rows_strategy, deleted=rows_strategy)
@settings(max_examples=100, deadline=None)
def test_delta_coalesced_preserves_net_effect(inserted, deleted):
    delta = Delta("t", tuple(inserted), tuple(deleted))
    coalesced = delta.coalesced()
    assert Counter(delta.inserted) - Counter(delta.deleted) == Counter(
        coalesced.inserted
    ) - Counter(coalesced.deleted)
    assert Counter(delta.deleted) - Counter(delta.inserted) == Counter(
        coalesced.deleted
    ) - Counter(coalesced.inserted)
    # Fully-cancelling deltas vanish.
    if Counter(inserted) == Counter(deleted):
        assert coalesced.empty


def snapshot(maintainer):
    return (
        maintainer.current_view().as_multiset(),
        {
            table: maintainer.aux_relation(table).as_multiset()
            for table in maintainer.aux_relations()
        },
    )


def churn_transaction(database, table="sale", count=2):
    """Delete ``count`` existing rows and re-insert them, one transaction."""
    rows = list(database.relation(table))[:count]
    return Transaction.of(Delta(table, inserted=rows, deleted=rows))


def test_same_row_churn_is_noop_everywhere():
    database = paper_mini_database()
    view = product_sales_view()
    for hotpath in (True, False):
        maintainer = SelfMaintainer(view, database, hotpath=hotpath)
        before_view, before_aux = snapshot(maintainer)
        maintainer.apply(churn_transaction(database, "sale"))
        maintainer.apply(churn_transaction(database, "product", count=1))
        after_view, after_aux = snapshot(maintainer)
        assert after_view == before_view, f"hotpath={hotpath}"
        assert after_aux == before_aux, f"hotpath={hotpath}"


def test_churn_mixed_with_real_changes_nets_out():
    database = paper_mini_database()
    view = product_sales_view()
    churn_rows = list(database.relation("sale"))[:2]
    fresh = (990, 1, 1, 1, 555)
    transaction = Transaction.of(
        Delta(
            "sale",
            inserted=(fresh, *churn_rows),
            deleted=tuple(churn_rows),
        )
    )
    reference = SelfMaintainer(view, database, hotpath=False)
    reference.apply(Transaction.of(Delta("sale", inserted=(fresh,))))
    for hotpath in (True, False):
        maintainer = SelfMaintainer(view, database, hotpath=hotpath)
        maintainer.apply(transaction)
        assert snapshot(maintainer) == snapshot(reference), f"hotpath={hotpath}"


@given(seed=st.integers(0, 10_000), steps=st.integers(1, 6))
@settings(**SETTINGS)
def test_coalescing_never_changes_final_state(seed, steps):
    scenario = random_scenario(seed)
    fast = SelfMaintainer(scenario.view, scenario.database, hotpath=True)
    slow = SelfMaintainer(scenario.view, scenario.database, hotpath=False)
    for step in range(steps):
        transaction = scenario.generator.step()
        fast.apply(transaction)
        slow.apply(transaction)
        assert_same_bag(
            fast.current_view(),
            slow.current_view(),
            f"seed={seed} step={step}",
        )
    for table in fast.aux_relations():
        assert_same_bag(
            fast.aux_relation(table),
            slow.aux_relation(table),
            f"seed={seed} aux={table}",
        )
