"""Tests for batch aggregates and the incremental state machines.

The state machines encode Table 1's maintainability semantics; the
hypothesis tests check that whenever a state *does* answer, it answers
exactly like batch recomputation — and that the paper's documented
failure cases really do fail.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.aggregates import (
    AggregateFunction,
    AvgState,
    BareSumState,
    CountState,
    DistinctState,
    ExtremumState,
    MaintenanceError,
    SumState,
    compute_aggregate,
    make_aggregate_state,
    merge_distributive,
)


class TestBatchEvaluation:
    def test_count(self):
        assert compute_aggregate(AggregateFunction.COUNT, [1, 1, 2]) == 3

    def test_count_distinct(self):
        assert compute_aggregate(AggregateFunction.COUNT, [1, 1, 2], True) == 2

    def test_sum_avg(self):
        assert compute_aggregate(AggregateFunction.SUM, [1, 2, 3]) == 6
        assert compute_aggregate(AggregateFunction.AVG, [1, 2, 3]) == 2.0

    def test_sum_distinct(self):
        assert compute_aggregate(AggregateFunction.SUM, [5, 5, 2], True) == 7

    def test_min_max(self):
        assert compute_aggregate(AggregateFunction.MIN, [3, 1, 2]) == 1
        assert compute_aggregate(AggregateFunction.MAX, [3, 1, 2]) == 3

    def test_empty_group_undefined(self):
        with pytest.raises(ValueError):
            compute_aggregate(AggregateFunction.SUM, [])


class TestCountState:
    def test_insert_delete(self):
        state = CountState()
        state.insert(1)
        state.insert(2)
        state.delete(1)
        assert state.result() == 1
        assert not state.empty

    def test_underflow(self):
        with pytest.raises(MaintenanceError):
            CountState().delete(1)

    def test_empty_detection(self):
        state = CountState()
        state.insert(1)
        state.delete(1)
        assert state.empty


class TestSumState:
    def test_tracks_sum_and_count(self):
        state = SumState()
        for v in (5, 7, -2):
            state.insert(v)
        state.delete(7)
        assert state.result() == 3
        assert state.count == 2

    def test_distinguishes_vanished_group_from_zero_sum(self):
        # The reason Table 2 pairs SUM with COUNT(*).
        state = SumState()
        state.insert(5)
        state.insert(-5)
        assert state.result() == 0
        assert not state.empty
        state.delete(5)
        state.delete(-5)
        assert state.empty

    def test_bare_sum_fails_after_deletions(self):
        # Table 1: SUM alone is not a SMAS for deletions.
        state = BareSumState()
        state.insert(5)
        state.delete(5)
        with pytest.raises(MaintenanceError):
            state.result()
        with pytest.raises(MaintenanceError):
            state.empty


class TestAvgState:
    def test_avg_via_sum_count(self):
        state = AvgState()
        state.insert(2)
        state.insert(4)
        assert state.result() == 3.0
        state.delete(2)
        assert state.result() == 4.0

    def test_empty_avg_undefined(self):
        state = AvgState()
        state.insert(1)
        state.delete(1)
        with pytest.raises(MaintenanceError):
            state.result()


class TestExtremumState:
    def test_insert_only_tracks_extremum(self):
        state = ExtremumState(AggregateFunction.MIN)
        for v in (5, 3, 9):
            state.insert(v)
        assert state.result() == 3

    def test_deleting_non_extremum_is_fine(self):
        state = ExtremumState(AggregateFunction.MAX)
        for v in (5, 3, 9):
            state.insert(v)
        state.delete(3)
        assert state.result() == 9

    def test_deleting_extremum_requires_recomputation(self):
        # Table 1: MIN/MAX are not self-maintainable for deletions.
        state = ExtremumState(AggregateFunction.MAX)
        state.insert(5)
        state.insert(9)
        with pytest.raises(MaintenanceError, match="recomputation"):
            state.delete(9)

    def test_last_delete_empties_group(self):
        state = ExtremumState(AggregateFunction.MIN)
        state.insert(5)
        state.delete(5)
        assert state.empty

    def test_append_only_rejects_all_deletions(self):
        state = ExtremumState(AggregateFunction.MIN, append_only=True)
        state.insert(5)
        state.insert(9)
        with pytest.raises(MaintenanceError, match="append-only"):
            state.delete(9)

    def test_requires_extremum_function(self):
        with pytest.raises(ValueError):
            ExtremumState(AggregateFunction.SUM)


class TestDistinctState:
    def test_refuses_everything(self):
        state = DistinctState(AggregateFunction.COUNT)
        with pytest.raises(MaintenanceError):
            state.insert(1)
        with pytest.raises(MaintenanceError):
            state.delete(1)
        with pytest.raises(MaintenanceError):
            state.result()


class TestFactory:
    def test_factory_dispatch(self):
        assert isinstance(
            make_aggregate_state(AggregateFunction.COUNT), CountState
        )
        assert isinstance(make_aggregate_state(AggregateFunction.SUM), SumState)
        assert isinstance(make_aggregate_state(AggregateFunction.AVG), AvgState)
        assert isinstance(
            make_aggregate_state(AggregateFunction.MIN), ExtremumState
        )
        assert isinstance(
            make_aggregate_state(AggregateFunction.MAX, distinct=True),
            DistinctState,
        )


class TestMergeDistributive:
    def test_merging_partitions(self):
        assert merge_distributive(AggregateFunction.SUM, [3, 4]) == 7
        assert merge_distributive(AggregateFunction.COUNT, [2, 5]) == 7
        assert merge_distributive(AggregateFunction.MIN, [3, 4]) == 3
        assert merge_distributive(AggregateFunction.MAX, [3, 4]) == 4

    def test_avg_is_not_distributive(self):
        with pytest.raises(ValueError):
            merge_distributive(AggregateFunction.AVG, [1.0, 2.0])

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError):
            merge_distributive(AggregateFunction.SUM, [])


@st.composite
def operation_sequences(draw):
    """Random interleavings of inserts and deletes of live values."""
    ops = []
    live = []
    for __ in range(draw(st.integers(1, 40))):
        if live and draw(st.booleans()):
            value = live.pop(draw(st.integers(0, len(live) - 1)))
            ops.append(("delete", value))
        else:
            value = draw(st.integers(-20, 20))
            live.append(value)
            ops.append(("insert", value))
    return ops


class TestStateExactness:
    """Whenever a state answers, it answers exactly like recomputation."""

    @given(operation_sequences())
    @settings(max_examples=80, deadline=None)
    def test_states_match_batch_recomputation(self, ops):
        for func in (
            AggregateFunction.COUNT,
            AggregateFunction.SUM,
            AggregateFunction.AVG,
            AggregateFunction.MIN,
            AggregateFunction.MAX,
        ):
            state = make_aggregate_state(func)
            live: list[int] = []
            for action, value in ops:
                try:
                    if action == "insert":
                        state.insert(value)
                        live.append(value)
                    else:
                        state.delete(value)
                        live.remove(value)
                except MaintenanceError:
                    # Only MIN/MAX may refuse, and only on deleting the
                    # current extremum (Table 1).
                    assert func in (
                        AggregateFunction.MIN,
                        AggregateFunction.MAX,
                    )
                    extremum = min(live) if func is AggregateFunction.MIN else max(live)
                    assert action == "delete" and value == extremum
                    break
                if live:
                    assert state.result() == pytest.approx(
                        compute_aggregate(func, live)
                    )
                else:
                    assert state.empty
