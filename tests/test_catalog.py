"""Unit tests for base tables, constraints, and the source database."""

import pytest

from repro.catalog.constraints import ReferentialConstraint
from repro.catalog.database import BaseTable, Database, IntegrityError
from repro.engine.deltas import Delta, Transaction
from repro.engine.types import AttributeType

from tests.helpers import paper_database


class TestBaseTable:
    def test_schema_is_qualified(self):
        table = paper_database().table("sale")
        assert table.schema.qualified_names()[0] == "sale.id"

    def test_key_must_be_a_column(self):
        with pytest.raises(ValueError, match="key"):
            BaseTable("t", {"a": AttributeType.INT}, key="id")

    def test_foreign_key_must_be_a_column(self):
        with pytest.raises(ValueError, match="foreign key"):
            BaseTable(
                "t",
                {"id": AttributeType.INT},
                key="id",
                references={"fk": "other"},
            )

    def test_key_values(self):
        table = paper_database().table("product")
        assert table.key_values() == {1, 2, 3}

    def test_reference_for(self):
        table = paper_database().table("sale")
        constraint = table.reference_for("timeid")
        assert constraint == ReferentialConstraint("sale", "timeid", "time")
        assert table.reference_for("price") is None

    def test_constraint_rendering(self):
        constraint = ReferentialConstraint("sale", "timeid", "time")
        assert str(constraint) == "sale.timeid -> time"


class TestDatabase:
    def test_duplicate_table_rejected(self):
        database = paper_database()
        with pytest.raises(ValueError, match="duplicate"):
            database.add_table(
                BaseTable("sale", {"id": AttributeType.INT}, key="id")
            )

    def test_unknown_table_raises(self):
        with pytest.raises(KeyError):
            paper_database().table("nope")

    def test_contains_and_names(self):
        database = paper_database()
        assert "sale" in database
        assert "nope" not in database
        assert set(database.table_names) == {"time", "product", "store", "sale"}

    def test_integrity_passes_on_valid_instance(self):
        paper_database().validate_integrity()

    def test_integrity_detects_dangling_reference(self):
        database = paper_database()
        database.table("sale").relation.insert((100, 999, 1, 1, 5))
        with pytest.raises(IntegrityError, match="dangling"):
            database.validate_integrity()

    def test_integrity_detects_duplicate_keys(self):
        database = paper_database()
        database.table("product").relation.insert((1, "dup", "dup"))
        with pytest.raises(IntegrityError, match="duplicate key"):
            database.validate_integrity()


class TestApply:
    def test_insert_and_delete(self):
        database = paper_database()
        database.apply(
            Transaction.of(
                Delta(
                    "sale",
                    inserted=[(100, 1, 1, 1, 42)],
                    deleted=[(8, 3, 1, 1, 5)],
                )
            )
        )
        ids = database.relation("sale").column("id")
        assert 100 in ids and 8 not in ids

    def test_cascaded_delete_order(self):
        # Deleting a product and its sales in one transaction must work
        # regardless of delta order (referencing rows removed first).
        database = paper_database()
        sales_of_3 = [r for r in database.relation("sale") if r[2] == 3]
        database.apply(
            Transaction.of(
                Delta.deletion("product", [(3, "bestco", "dairy")]),
                Delta.deletion("sale", sales_of_3),
            )
        )
        assert 3 not in database.table("product").key_values()

    def test_insert_order_dimension_first(self):
        database = paper_database()
        database.apply(
            Transaction.of(
                Delta.insertion("sale", [(101, 1, 9, 1, 7)]),
                Delta.insertion("product", [(9, "newbrand", "misc")]),
            )
        )
        database.validate_integrity()

    def test_invalid_transaction_rejected(self):
        database = paper_database()
        with pytest.raises(IntegrityError):
            database.apply(
                Transaction.of(Delta.insertion("sale", [(101, 1, 999, 1, 7)]))
            )

    def test_unknown_table_in_transaction(self):
        database = paper_database()
        with pytest.raises(KeyError):
            database.apply(
                Transaction.of(Delta.insertion("ghost", [(1,)]))
            )

    def test_same_key_update_with_live_references(self):
        # Updating a referenced dimension row (delete + insert of the
        # same key) must not trip integrity validation.
        database = paper_database()
        database.apply(
            Transaction.of(
                Delta.update(
                    "product",
                    old_rows=[(1, "acme", "dairy")],
                    new_rows=[(1, "acme", "frozen")],
                )
            )
        )
        row = next(r for r in database.relation("product") if r[0] == 1)
        assert row[2] == "frozen"


class TestSnapshot:
    def test_snapshot_is_deep(self):
        database = paper_database()
        snapshot = database.snapshot()
        database.table("sale").relation.insert((100, 1, 1, 1, 5))
        assert len(snapshot.relation("sale")) + 1 == len(
            database.relation("sale")
        )

    def test_snapshot_preserves_metadata(self):
        snapshot = paper_database().snapshot()
        table = snapshot.table("sale")
        assert table.key == "id"
        assert table.reference_for("productid").referenced == "product"
