"""Unit tests for the columnar backend: column stores, batch kernels,
store materializations, and backend selection.

The differential and fault-injection suites
(:mod:`tests.test_backends_differential`) pin the integrated behavior;
these tests pin the pieces — free-list recycling, rid-index
maintenance, decode-map caching, the compiled apply/fold paths, and
the error surface — at the level where a regression is diagnosable.
"""

from array import array

import pytest

from repro.backends.base import (
    BACKEND_NAMES,
    BACKEND_SPECS,
    BackendError,
    make_backend,
    resolve_backend_name,
)
from repro.backends.columnar import ColumnarBackend, _ColumnarStore
from repro.backends.kernels import (
    ColumnStore,
    build_key_index,
    fold_groups,
    gather,
    hash_antijoin,
    hash_equijoin,
    hash_semijoin,
    selection_vector,
)
from repro.core.derivation import derive_auxiliary_views
from repro.core.maintenance import SelfMaintenanceError
from repro.core.view import JoinCondition, make_view
from repro.core.rewrite import (
    AggregateCategory,
    GroupAccumulator,
    SymbolicProgram,
)
from repro.engine.aggregates import AggregateFunction
from repro.engine.expressions import Column
from repro.engine.operators import AggregateItem, GroupByItem
from repro.engine.schema import Attribute, Schema
from repro.engine.types import AttributeType
from repro.engine.undolog import UndoLog
from repro.workloads.retail import product_sales_max_view, product_sales_view

from tests.helpers import assert_same_bag, paper_database


def _schema(*specs) -> Schema:
    return Schema(Attribute(name, atype) for name, atype in specs)


def assert_rid_indexes_consistent(materialization) -> None:
    """Every maintained value->rids index mirrors the live columns."""
    store = materialization.store
    for position, index in materialization._rid_indexes.items():
        column = store.columns[position]
        expected: dict = {}
        for rid, bit in enumerate(store.live):
            if bit:
                expected.setdefault(column[rid], set()).add(rid)
        assert index == expected, f"index on column {position} diverged"


def _columnar_materialization(view, table="sale", append_only=False):
    database = paper_database()
    aux = derive_auxiliary_views(view, database, append_only=append_only)
    materialization = ColumnarBackend().make_materialization(
        aux.for_table(table)
    )
    materialization.load(aux.materialize(database)[table])
    return materialization


def _minmax_view():
    """An extremum-bearing view whose append-only auxiliary view folds
    MIN/MAX — the shape the compiled apply loop must refuse."""
    return make_view(
        "price_range",
        ("sale", "time"),
        [
            GroupByItem(Column("month", "time")),
            AggregateItem(
                AggregateFunction.MIN, Column("price", "sale"), alias="lo"
            ),
            AggregateItem(
                AggregateFunction.MAX, Column("price", "sale"), alias="hi"
            ),
            AggregateItem(AggregateFunction.COUNT, None, alias="n"),
        ],
        joins=[JoinCondition("sale", "timeid", "time", "id")],
    )


class TestColumnStore:
    SCHEMA = _schema(
        ("id", AttributeType.INT),
        ("name", AttributeType.STRING),
        ("price", AttributeType.FLOAT),
    )

    def test_float_columns_are_typed_arrays(self):
        store = ColumnStore(self.SCHEMA)
        assert isinstance(store.columns[2], array)
        assert store.columns[2].typecode == "d"
        assert isinstance(store.columns[0], list)

    def test_append_release_recycles_rids(self):
        store = ColumnStore(self.SCHEMA)
        rids = [store.append((i, f"r{i}", float(i))) for i in range(4)]
        assert len(store) == 4 and store.capacity == 4
        store.release(rids[1])
        store.release(rids[2])
        assert len(store) == 2 and store.capacity == 4
        # Recycled slots are reused LIFO; capacity does not grow.
        first = store.append((9, "r9", 9.0))
        second = store.append((8, "r8", 8.0))
        assert {first, second} == {rids[1], rids[2]}
        assert store.capacity == 4
        assert sorted(store.all_rows()) == [
            (0, "r0", 0.0), (3, "r3", 3.0), (8, "r8", 8.0), (9, "r9", 9.0),
        ]

    def test_release_nulls_object_columns_only(self):
        store = ColumnStore(self.SCHEMA)
        rid = store.append((1, "gone", 2.5))
        store.release(rid)
        assert store.columns[0][rid] is None
        assert store.columns[1][rid] is None
        assert store.live[rid] == 0  # the null mask covers the stale double

    def test_live_rids_skip_holes(self):
        store = ColumnStore(self.SCHEMA)
        keep = store.append((1, "a", 1.0))
        drop = store.append((2, "b", 2.0))
        store.release(drop)
        assert list(store.live_rids()) == [keep]


class TestKernels:
    ROWS = [(1, 10), (2, 20), (3, 30), (2, 40)]

    def test_selection_vector_and_gather(self):
        selection = selection_vector(self.ROWS, lambda row: row[0] == 2)
        assert selection == [1, 3]
        assert gather(self.ROWS, selection) == [(2, 20), (2, 40)]

    def test_build_key_index_single_and_multi(self):
        assert build_key_index(self.ROWS, (0,)) == {1: [0], 2: [1, 3], 3: [2]}
        assert build_key_index(self.ROWS, (0, 1))[(2, 20)] == [1]

    def test_hash_equijoin_matches_nested_loop(self):
        right = [(2, "x"), (3, "y"), (3, "z")]
        expected = sorted(
            left + r
            for left in self.ROWS
            for r in right
            if left[0] == r[0]
        )
        assert sorted(hash_equijoin(self.ROWS, right, (0,), (0,))) == expected

    def test_semijoin_and_antijoin_partition(self):
        keys = {2, 3}
        inside = hash_semijoin(self.ROWS, keys, (0,))
        outside = hash_antijoin(self.ROWS, keys, (0,))
        assert inside == [(2, 20), (3, 30), (2, 40)]
        assert outside == [(1, 10)]
        assert sorted(inside + outside) == sorted(self.ROWS)

    def test_fold_groups_counts_sums_and_multiplicity(self):
        # Rows: (key, value, multiplicity).
        program = SymbolicProgram(
            key_positions=(0,),
            count_position=2,
            sum_items=((1, 1, True),),  # slot 1 <- SUM(value * mult)
            raw_items=(),
        )
        rows = [(1, 10, 2), (2, 5, 1), (1, 1, 3)]
        groups: dict = {}
        folded = fold_groups(rows, program, {}, groups)
        assert folded == 3
        assert groups[(1,)] == GroupAccumulator(5, {1: 23})
        assert groups[(2,)] == GroupAccumulator(1, {1: 5})

    def test_fold_groups_extrema_and_distinct(self):
        program = SymbolicProgram(
            key_positions=(0,),
            count_position=None,
            sum_items=(),
            raw_items=(
                (1, AggregateCategory.EXTREMUM, 1),
                (2, AggregateCategory.DISTINCT, 1),
            ),
        )
        rows = [(1, 7), (1, 3), (1, 7)]
        groups: dict = {}
        fold_groups(rows, program, {1: max}, groups)
        acc = groups[(1,)]
        assert acc.multiplicity == 3
        assert acc.extrema == {1: 7}
        assert acc.distincts == {2: {3, 7}}


class TestColumnarProjectionStore:
    # The time auxiliary view under product_sales projects
    # (id, month) out of base rows shaped (id, day, month, year).

    def test_apply_and_bulk_insert_maintain_indexes(self):
        materialization = _columnar_materialization(
            product_sales_view(1997), table="time"
        )
        materialization.rows_matching("id", {1})  # build the rid index
        before = len(materialization)
        fresh = [
            (900 + i, 1, 1 + i, 1997) for i in range(8)
        ]  # exceeds any free slots: exercises the bulk-extend tail
        materialization.apply(fresh, sign=+1)
        assert len(materialization) == before + len(fresh)
        assert_rid_indexes_consistent(materialization)
        materialization.apply(fresh[:3], sign=-1)
        assert len(materialization) == before + 5
        assert_rid_indexes_consistent(materialization)
        assert len(materialization.store.free) == 3
        # Recycled slots are filled before the columns grow again.
        capacity = materialization.store.capacity
        materialization.apply(fresh[:2], sign=+1)
        assert materialization.store.capacity == capacity
        assert_rid_indexes_consistent(materialization)

    def test_delete_of_absent_row_is_all_or_nothing(self):
        materialization = _columnar_materialization(
            product_sales_view(1997), table="time"
        )
        before = materialization.relation()
        with pytest.raises(SelfMaintenanceError, match="absent rows"):
            # (1, 1, 1, 1997) projects to a live row; the second does not.
            materialization.apply([(1, 1, 1, 1997), (77, 1, 9, 1997)], -1)
        assert_same_bag(materialization.relation(), before, "failed delete")

    def test_decode_map_unique_nonunique_and_invalidation(self):
        materialization = _columnar_materialization(
            product_sales_view(1997), table="time"
        )
        position = materialization.schema.index_of("id")
        month = materialization.schema.index_of("month")
        mapping = materialization.decode_map(position, month)
        assert mapping is not None
        live = materialization.store
        for rid, bit in enumerate(live.live):
            if bit:
                key = live.columns[position][rid]
                assert mapping[key] == live.columns[month][rid]
        # Non-unique key column: the map is disabled, not wrong.
        assert materialization.decode_map(month, position) is None
        # Mutation drops the cache.
        materialization.apply([(99, 1, 5, 1997)], sign=+1)
        assert (position, month) not in materialization._decode_maps

    def test_undo_restores_rows_and_indexes(self):
        materialization = _columnar_materialization(
            product_sales_view(1997), table="time"
        )
        materialization.rows_matching("id", {1})
        before = materialization.relation()
        log = UndoLog()
        materialization.begin_undo(log)
        materialization.apply([(901, 1, 1, 1997), (902, 1, 2, 1997)], +1)
        materialization.apply([(1, 1, 1, 1997)], -1)
        log.rollback()
        materialization.end_undo()
        assert_same_bag(materialization.relation(), before, "undo")
        assert_rid_indexes_consistent(materialization)


class TestColumnarCompressedStore:
    def test_compiled_apply_creates_updates_and_releases_groups(self):
        materialization = _columnar_materialization(product_sales_view(1997))
        assert materialization._fast_apply is not None
        materialization.rows_matching("timeid", {3})
        # Fresh group, then release it back to zero.
        materialization.apply([(900, 9, 9, 1, 4)], sign=+1)
        assert (9, 9, 4, 1) in materialization.relation().rows
        assert_rid_indexes_consistent(materialization)
        materialization.apply([(900, 9, 9, 1, 4)], sign=-1)
        assert all(row[:2] != (9, 9) for row in materialization.relation())
        assert materialization.store.free, "released rid not recycled"
        assert_rid_indexes_consistent(materialization)

    def test_error_messages_match_row_engine(self):
        materialization = _columnar_materialization(product_sales_view(1997))
        with pytest.raises(
            SelfMaintenanceError, match=r"deletion from absent group \(9, 9\)"
        ):
            materialization.apply([(900, 9, 9, 1, 4)], sign=-1)
        with pytest.raises(
            SelfMaintenanceError, match=r"absent group \(3, 1\)"
        ):
            # Group (3, 1) holds exactly one sale; the first deletion in
            # the batch releases the group inline, so the second hits
            # the absent-group check — exactly like the row engine.
            materialization.apply(
                [(8, 3, 1, 1, 5), (8, 3, 1, 1, 5)], sign=-1
            )

    def test_minmax_shape_keeps_generic_loop_and_append_only(self):
        materialization = _columnar_materialization(
            _minmax_view(), append_only=True
        )
        assert materialization._fast_apply is None
        materialization.apply([(900, 1, 1, 1, 123)], sign=+1)
        with pytest.raises(SelfMaintenanceError, match="append-only"):
            materialization.apply([(900, 1, 1, 1, 123)], sign=-1)

    def test_algebraic_max_view_pins_raw_column_and_stays_compiled(self):
        # Without the append-only relaxation, MAX keeps `price` in the
        # grouping key, so the store is an ordinary counted compression
        # and the compiled loop (deletions included) still applies.
        materialization = _columnar_materialization(product_sales_max_view())
        assert materialization._fast_apply is not None
        materialization.apply([(900, 1, 1, 1, 123)], sign=+1)
        assert (1, 123, 1) in materialization.relation().rows
        materialization.apply([(900, 1, 1, 1, 123)], sign=-1)
        assert (1, 123, 1) not in materialization.relation().rows

    def test_undo_restores_totals_by_key(self):
        materialization = _columnar_materialization(product_sales_view(1997))
        before = materialization.relation()
        log = UndoLog()
        materialization.begin_undo(log)
        materialization.apply(
            [(901, 1, 1, 1, 50), (902, 9, 9, 1, 60)], sign=+1
        )
        materialization.apply([(8, 3, 1, 1, 5)], sign=-1)
        log.rollback()
        materialization.end_undo()
        assert_same_bag(materialization.relation(), before, "undo")


class TestBackendSelection:
    def test_make_backend_unknown_spec_lists_names_and_specs(self):
        with pytest.raises(BackendError) as excinfo:
            make_backend("parquet:/tmp/x")
        message = str(excinfo.value)
        assert "unknown backend 'parquet:/tmp/x'" in message
        for name in BACKEND_NAMES:
            assert name in message
        assert "sharded:<N>[:parallel]" in message
        assert "sqlite[:<path>]" in message

    def test_resolve_backend_name_rejects_unknown(self):
        with pytest.raises(BackendError, match="valid names are"):
            resolve_backend_name("duckdb")
        for spec in BACKEND_SPECS:
            assert resolve_backend_name(spec.split(":")[0].split("[")[0])

    def test_columnar_spec_builds_columnar_backend(self):
        backend = make_backend("columnar")
        assert isinstance(backend, ColumnarBackend)
        assert backend.name == "columnar"
        assert "column stores" in backend.describe()

    def test_env_variable_selects_columnar(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "columnar")
        assert isinstance(make_backend(None), ColumnarBackend)
        assert resolve_backend_name(None) == "columnar"


class TestStoreKindSelection:
    def test_projection_and_compressed_pick_columnar_stores(self):
        database = paper_database()
        aux = derive_auxiliary_views(product_sales_view(1997), database)
        backend = ColumnarBackend()
        for table in ("sale", "time", "product"):
            materialization = backend.make_materialization(
                aux.for_table(table)
            )
            assert isinstance(materialization, _ColumnarStore)
