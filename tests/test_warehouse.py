"""Tests for the warehouse runtime and sealed sources (Figure 1)."""

import pytest

from repro.engine.deltas import Delta, Transaction
from repro.core.maintenance import SelfMaintainer, SelfMaintenanceError
from repro.testing.faults import FaultInjector, InjectedFault, state_fingerprint
from repro.warehouse.sources import SealedSource, SourceAccessError
from repro.warehouse.warehouse import Warehouse
from repro.workloads.retail import (
    RetailConfig,
    build_retail_database,
    product_sales_max_view,
    product_sales_view,
)
from repro.workloads.streams import TransactionGenerator

from tests.helpers import assert_same_bag, paper_database


class TestSealedSource:
    def test_reads_allowed_before_seal(self):
        source = SealedSource(paper_database())
        assert len(source.relation("sale")) > 0

    def test_reads_blocked_after_seal(self):
        source = SealedSource(paper_database())
        source.seal()
        with pytest.raises(SourceAccessError):
            source.relation("sale")
        with pytest.raises(SourceAccessError):
            source.table("sale")
        with pytest.raises(SourceAccessError):
            __ = source.tables
        assert source.blocked_reads == 3

    def test_catalog_metadata_stays_readable(self):
        source = SealedSource(paper_database())
        source.seal()
        assert "sale" in source.table_names
        assert "sale" in source

    def test_writes_allowed_while_sealed(self):
        source = SealedSource(paper_database())
        source.seal()
        source.apply(
            Transaction.of(Delta.insertion("sale", [(100, 1, 1, 1, 5)]))
        )
        assert len(source.ground_truth().relation("sale")) == 10

    def test_unseal(self):
        source = SealedSource(paper_database())
        source.seal()
        source.unseal()
        assert len(source.relation("sale")) > 0


class TestSelfMaintenanceIsGenuine:
    def test_maintainer_never_reads_sealed_sources(self):
        """The headline property: after initialization the warehouse
        operates with base data physically unreachable."""
        database = paper_database()
        source = SealedSource(database)
        maintainer = SelfMaintainer(product_sales_view(1997), source)
        source.seal()

        generator = TransactionGenerator(database, seed=17)
        for __ in range(25):
            transaction = generator.step()
            maintainer.apply(transaction)  # would raise if it read source
        source.unseal()
        assert_same_bag(
            maintainer.current_view(),
            product_sales_view(1997).evaluate(database),
        )
        assert source.blocked_reads == 0


class TestWarehouse:
    def make(self):
        database = build_retail_database(
            RetailConfig(
                days=8,
                stores=2,
                products=10,
                products_sold_per_day=4,
                transactions_per_product=2,
                start_year=1997,
            )
        )
        warehouse = Warehouse(database)
        warehouse.register(product_sales_view(1997))
        warehouse.register(product_sales_max_view())
        return database, warehouse

    def test_register_and_read(self):
        database, warehouse = self.make()
        assert set(warehouse.view_names) == {
            "product_sales", "product_sales_max",
        }
        assert_same_bag(
            warehouse.summary("product_sales"),
            product_sales_view(1997).evaluate(database),
        )

    def test_duplicate_registration_rejected(self):
        database, warehouse = self.make()
        with pytest.raises(ValueError, match="already registered"):
            warehouse.register(product_sales_view(1997))

    def test_detail_access(self):
        __, warehouse = self.make()
        detail = warehouse.detail("product_sales", "sale")
        assert detail.schema.has("sale.cnt")

    def test_one_stream_maintains_all_views(self):
        database, warehouse = self.make()
        generator = TransactionGenerator(database, seed=23)
        for __ in range(20):
            warehouse.apply(generator.step())
        assert_same_bag(
            warehouse.summary("product_sales"),
            product_sales_view(1997).evaluate(database),
        )
        assert_same_bag(
            warehouse.summary("product_sales_max"),
            product_sales_max_view().evaluate(database),
        )

    def test_storage_report(self):
        __, warehouse = self.make()
        report = warehouse.storage_report("product_sales")
        assert report.view == "product_sales"
        assert set(report.per_auxiliary) == {"sale", "time", "product"}
        assert report.detail_bytes == sum(report.per_auxiliary.values())
        assert report.total_bytes == report.summary_bytes + report.detail_bytes
        assert report.eliminated == ()

    def test_detail_is_smaller_than_fact_table(self):
        database, warehouse = self.make()
        report = warehouse.storage_report("product_sales")
        fact_bytes = database.relation("sale").size_bytes()
        assert report.per_auxiliary["sale"] < fact_bytes


class TestWarehouseAtomicity:
    """One failing view must not leave sibling views updated (ISSUE 2)."""

    def make(self):
        database = paper_database()
        warehouse = Warehouse(database)
        warehouse.register(product_sales_view(1997))
        warehouse.register(product_sales_max_view())
        return database, warehouse

    def test_second_view_failure_rolls_back_first(self):
        """Regression: views are updated in registration order, so a
        mid-loop failure used to leave earlier views updated and later
        ones stale.  Now the whole warehouse apply is atomic."""
        database, warehouse = self.make()
        first = warehouse.maintainer("product_sales")
        second = warehouse.maintainer("product_sales_max")
        before_first = state_fingerprint(first)
        before_second = state_fingerprint(second)
        injector = FaultInjector(second)
        injector.arm("aggregate-fold")
        transaction = Transaction.of(
            Delta.insertion("sale", [(100, 1, 1, 1, 30)])
        )
        with pytest.raises(InjectedFault):
            warehouse.apply(transaction)
        assert state_fingerprint(first) == before_first
        assert state_fingerprint(second) == before_second
        assert first.perf.counters["rollbacks"] == 1
        injector.uninstall()
        assert second.perf.counters["rollbacks"] == 1
        # The warehouse keeps working after recovery.
        database.apply(transaction)
        warehouse.apply(transaction)
        assert_same_bag(
            warehouse.summary("product_sales"),
            product_sales_view(1997).evaluate(database),
        )
        assert_same_bag(
            warehouse.summary("product_sales_max"),
            product_sales_max_view().evaluate(database),
        )

    def test_second_view_rejecting_transaction_rolls_back_first(self):
        """An adopted append-only view rejects deletions upfront; the
        first (regular) view has already absorbed them by then and must
        be rolled back."""
        database = paper_database()
        warehouse = Warehouse(database)
        warehouse.register(product_sales_view(1997))
        append_only = SelfMaintainer(
            product_sales_max_view(), database, append_only=True
        )
        warehouse.adopt(append_only)
        first = warehouse.maintainer("product_sales")
        before_first = state_fingerprint(first)
        before_second = state_fingerprint(append_only)
        transaction = Transaction.of(
            Delta(
                "sale",
                inserted=((100, 1, 1, 1, 30),),
                deleted=((1, 1, 1, 1, 10),),
            )
        )
        with pytest.raises(SelfMaintenanceError, match="append-only"):
            warehouse.apply(transaction)
        assert state_fingerprint(first) == before_first
        assert state_fingerprint(append_only) == before_second
        assert first.perf.counters["rollbacks"] == 1
        assert_same_bag(
            warehouse.summary("product_sales"),
            product_sales_view(1997).evaluate(database),
        )
