"""Tests for deferred (batch) maintenance and delta coalescing."""

import pytest

from repro.core.maintenance import SelfMaintainer, SelfMaintenanceError
from repro.engine.deltas import Delta, Transaction, coalesce
from repro.warehouse.deferred import DeferredMaintainer, StaleViewError
from repro.workloads.retail import product_sales_view
from repro.workloads.streams import TransactionGenerator

from tests.helpers import assert_same_bag, paper_database


class TestCoalesce:
    def test_insert_then_delete_cancels(self):
        transactions = [
            Transaction.of(Delta.insertion("t", [(1,), (2,)])),
            Transaction.of(Delta.deletion("t", [(1,)])),
        ]
        net = coalesce(transactions)
        assert net.delta_for("t").inserted == ((2,),)
        assert net.delta_for("t").deleted == ()

    def test_delete_then_reinsert_becomes_update(self):
        transactions = [
            Transaction.of(Delta.deletion("t", [(1, "old")])),
            Transaction.of(Delta.insertion("t", [(1, "new")])),
        ]
        net = coalesce(transactions)
        assert net.delta_for("t").deleted == ((1, "old"),)
        assert net.delta_for("t").inserted == ((1, "new"),)

    def test_full_churn_cancels_to_empty(self):
        transactions = [
            Transaction.of(Delta.insertion("t", [(5,)])),
            Transaction.of(Delta.deletion("t", [(5,)])),
        ]
        assert coalesce(transactions).empty

    def test_multiset_semantics(self):
        transactions = [
            Transaction.of(Delta.insertion("t", [(1,), (1,)])),
            Transaction.of(Delta.deletion("t", [(1,)])),
        ]
        net = coalesce(transactions)
        assert net.delta_for("t").inserted == ((1,),)

    def test_delete_insert_delete(self):
        transactions = [
            Transaction.of(Delta.deletion("t", [(1,)])),
            Transaction.of(Delta.insertion("t", [(1,)])),
            Transaction.of(Delta.deletion("t", [(1,)])),
        ]
        net = coalesce(transactions)
        assert net.delta_for("t").deleted == ((1,),)
        assert net.delta_for("t").inserted == ()

    def test_multiple_tables(self):
        transactions = [
            Transaction.of(
                Delta.insertion("a", [(1,)]), Delta.deletion("b", [(2,)])
            ),
            Transaction.of(Delta.insertion("b", [(3,)])),
        ]
        net = coalesce(transactions)
        assert set(net.tables) == {"a", "b"}

    def test_empty_input(self):
        assert coalesce([]).empty


class TestDeferredMaintainer:
    def make(self, coalesce_deltas=True):
        database = paper_database()
        maintainer = SelfMaintainer(product_sales_view(1997), database)
        return database, DeferredMaintainer(maintainer, coalesce_deltas)

    def test_buffering_and_refresh(self):
        database, deferred = self.make()
        transaction = Transaction.of(
            Delta.insertion("sale", [(100, 1, 1, 1, 30)])
        )
        database.apply(transaction)
        deferred.apply(transaction)
        assert deferred.pending == 1
        stats = deferred.refresh()
        assert stats.transactions == 1
        assert deferred.pending == 0
        assert_same_bag(
            deferred.current_view(),
            product_sales_view(1997).evaluate(database),
        )

    def test_stale_read_refused(self):
        database, deferred = self.make()
        transaction = Transaction.of(
            Delta.insertion("sale", [(100, 1, 1, 1, 30)])
        )
        database.apply(transaction)
        deferred.apply(transaction)
        with pytest.raises(StaleViewError):
            deferred.current_view()
        assert len(deferred.current_view(allow_stale=True)) > 0

    def test_churn_is_never_propagated(self):
        database, deferred = self.make()
        row = (100, 1, 1, 1, 30)
        insert = Transaction.of(Delta.insertion("sale", [row]))
        delete = Transaction.of(Delta.deletion("sale", [row]))
        database.apply(insert)
        database.apply(delete)
        deferred.apply(insert)
        deferred.apply(delete)
        stats = deferred.refresh()
        assert stats.buffered_rows == 2
        assert stats.propagated_rows == 0
        assert stats.cancelled_rows == 2
        assert_same_bag(
            deferred.current_view(),
            product_sales_view(1997).evaluate(database),
        )

    @pytest.mark.parametrize("coalesce_deltas", [True, False])
    def test_deferred_equals_eager_under_streams(self, coalesce_deltas):
        database = paper_database()
        view = product_sales_view(1997)
        deferred = DeferredMaintainer(
            SelfMaintainer(view, database), coalesce_deltas
        )
        generator = TransactionGenerator(database, seed=19)
        for batch in range(5):
            for __ in range(6):
                deferred.apply(generator.step())
            deferred.refresh()
            assert_same_bag(
                deferred.current_view(), view.evaluate(database),
                f"batch={batch} coalesce={coalesce_deltas}",
            )

    def test_empty_transactions_ignored(self):
        __, deferred = self.make()
        deferred.apply(Transaction())
        assert deferred.pending == 0

    def test_stale_detail_reads_refused(self):
        """aux_relation/detail_size_bytes serve the same detail the
        summary is derived from; they honour the same staleness guard."""
        database, deferred = self.make()
        transaction = Transaction.of(
            Delta.insertion("sale", [(100, 1, 1, 1, 30)])
        )
        database.apply(transaction)
        deferred.apply(transaction)
        with pytest.raises(StaleViewError):
            deferred.aux_relation("sale")
        with pytest.raises(StaleViewError):
            deferred.detail_size_bytes()
        assert len(deferred.aux_relation("sale", allow_stale=True)) > 0
        assert deferred.detail_size_bytes(allow_stale=True) > 0
        deferred.refresh()
        assert len(deferred.aux_relation("sale")) > 0
        assert deferred.detail_size_bytes() > 0

    def test_failed_refresh_is_all_or_nothing_and_retryable(self):
        """Regression: a mid-loop failure in the non-coalesced path used
        to keep the whole buffer while leaving the already-propagated
        transactions applied, so a retried refresh double-applied them."""
        database, deferred = self.make(coalesce_deltas=False)
        view = product_sales_view(1997)
        good1 = Transaction.of(Delta.insertion("sale", [(100, 1, 1, 1, 30)]))
        # Joins fine (time 3, product 3 exist) but no such detail group.
        poison = Transaction.of(Delta.deletion("sale", [(999, 3, 3, 1, 7)]))
        good2 = Transaction.of(Delta.insertion("sale", [(101, 1, 2, 1, 40)]))
        database.apply(good1)
        database.apply(good2)
        for transaction in (good1, poison, good2):
            deferred.apply(transaction)
        with pytest.raises(SelfMaintenanceError):
            deferred.refresh()
        # Buffer intact, nothing half-applied: detail still matches the
        # pre-refresh state.
        assert deferred.pending == 3
        assert_same_bag(
            deferred.current_view(allow_stale=True),
            view.evaluate(paper_database()),
        )
        # Drop the poison transaction and retry: exactly-once semantics.
        assert deferred.discard(poison)
        assert not deferred.discard(poison)
        stats = deferred.refresh()
        assert stats.transactions == 2
        assert_same_bag(deferred.current_view(), view.evaluate(database))

    def test_failed_coalesced_refresh_keeps_buffer(self):
        database, deferred = self.make(coalesce_deltas=True)
        good = Transaction.of(Delta.insertion("sale", [(100, 1, 1, 1, 30)]))
        poison = Transaction.of(Delta.deletion("sale", [(999, 3, 3, 1, 7)]))
        deferred.apply(good)
        deferred.apply(poison)
        with pytest.raises(SelfMaintenanceError):
            deferred.refresh()
        assert deferred.pending == 2
        assert_same_bag(
            deferred.current_view(allow_stale=True),
            product_sales_view(1997).evaluate(paper_database()),
        )
        database.apply(good)
        deferred.discard(poison)
        deferred.refresh()
        assert_same_bag(
            deferred.current_view(),
            product_sales_view(1997).evaluate(database),
        )
