"""Differential tests: the sharded backend against the interpreter.

Hash-partitioning the root auxiliary by the view's group key splits
every propagate join into disjoint per-shard joins, so the merged
result must be row-multiset-identical to the single-shard interpreter
— for any shard count, in both execution modes, and including after
rollbacks, where every shard's undo scope must rewind in lockstep
(all-or-nothing even when only one shard saw the failing row).
"""

from hypothesis import HealthCheck, given, settings, strategies as st
import pytest

from repro.backends.base import BackendError, make_backend, resolve_backend_name
from repro.backends.sharded import (
    SHARD_COMPUTE_SECONDS,
    SHARD_COUNT_GAUGE,
    SHARD_ROUTED_ROWS,
    ShardedBackend,
)
from repro.core.maintenance import SelfMaintainer, SelfMaintenanceError
from repro.engine.deltas import Delta, Transaction
from repro.testing.faults import (
    FaultInjector,
    InjectedFault,
    state_fingerprint,
    verify_index_consistency,
)
from repro.workloads.random_gen import random_scenario
from repro.workloads.retail import (
    RetailConfig,
    build_retail_database,
    product_sales_view,
)
from repro.workloads.streams import TransactionGenerator

from tests.helpers import assert_same_bag

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

FAULT_PHASES = ["local-reduce", "join-reduce", "aggregate-fold", "aux-apply"]


def _assert_maintainers_match(sharded_m, memory_m, context=""):
    assert_same_bag(
        sharded_m.current_view(), memory_m.current_view(), context
    )
    for table in memory_m.aux_relations():
        assert_same_bag(
            sharded_m.aux_relation(table),
            memory_m.aux_relation(table),
            f"{context} aux={table}",
        )


def _retail_pair(backend, seed=13):
    """Identical retail warehouses, one per backend, with twin
    transaction generators."""
    def build():
        return build_retail_database(
            RetailConfig(
                days=6,
                stores=2,
                products=8,
                products_sold_per_day=4,
                transactions_per_product=2,
                start_year=1997,
            )
        )

    db_shard, db_mem = build(), build()
    view = product_sales_view(1997)
    sharded_m = SelfMaintainer(view, db_shard, backend=backend)
    memory_m = SelfMaintainer(view, db_mem, backend="memory")
    return (
        sharded_m,
        memory_m,
        TransactionGenerator(db_shard, seed=seed),
        TransactionGenerator(db_mem, seed=seed),
    )


# ----------------------------------------------------------------------
# Serial mode: exact shard-merge over random views and streams.
# ----------------------------------------------------------------------


@given(
    seed=st.integers(0, 10_000),
    steps=st.integers(1, 4),
    n_shards=st.sampled_from([1, 2, 3, 8]),
)
@settings(**SETTINGS)
def test_serial_sharded_tracks_memory_and_recomputation(seed, steps, n_shards):
    scenario = random_scenario(seed)
    memory_m = SelfMaintainer(scenario.view, scenario.database,
                              backend="memory")
    sharded_m = SelfMaintainer(
        scenario.view,
        scenario.database,
        backend=ShardedBackend(n_shards=n_shards),
    )
    for step in range(steps):
        transaction = scenario.generator.step()
        memory_m.apply(transaction)
        sharded_m.apply(transaction)
        context = f"seed={seed} step={step} shards={n_shards}"
        _assert_maintainers_match(sharded_m, memory_m, context)
        assert_same_bag(
            sharded_m.current_view(),
            scenario.view.evaluate_eager(scenario.database),
            context,
        )


# ----------------------------------------------------------------------
# Parallel mode: worker processes produce the same merge.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n_shards", [1, 3])
def test_parallel_sharded_matches_memory(n_shards):
    backend = ShardedBackend(n_shards=n_shards, parallel=True)
    try:
        sharded_m, memory_m, gen_shard, gen_mem = _retail_pair(backend)
        for step in range(6):
            memory_m.apply(gen_mem.step())
            sharded_m.apply(gen_shard.step())
            _assert_maintainers_match(
                sharded_m, memory_m, f"step={step} shards={n_shards}"
            )
    finally:
        backend.close()


# ----------------------------------------------------------------------
# All-or-nothing: faults and single-shard failures roll every shard back.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("phase", FAULT_PHASES)
@pytest.mark.parametrize("parallel", [False, True], ids=["serial", "parallel"])
def test_fault_rolls_back_every_shard(phase, parallel):
    backend = ShardedBackend(n_shards=3, parallel=parallel)
    try:
        sharded_m, __, generator, __ = _retail_pair(backend, seed=41)
        sharded_m.apply(generator.step())
        fingerprint = state_fingerprint(sharded_m)
        injector = FaultInjector(sharded_m)
        injector.arm(phase)
        tx = generator.next_transaction()
        with pytest.raises(InjectedFault):
            sharded_m.apply(tx)
        injector.uninstall()
        assert state_fingerprint(sharded_m) == fingerprint, (
            f"not rolled back after fault in {phase}"
        )
        verify_index_consistency(sharded_m)
        # the disarmed transaction then applies cleanly
        generator.database.apply(tx)
        sharded_m.apply(tx)
    finally:
        backend.close()


@pytest.mark.parametrize("parallel", [False, True], ids=["serial", "parallel"])
def test_one_shard_failure_rolls_back_all(parallel):
    """A schema-valid deletion of an absent row passes upfront
    validation and fails inside exactly one shard's apply — after the
    summary groups have already been mutated.  Every shard (and the
    summary) must rewind."""
    backend = ShardedBackend(n_shards=3, parallel=parallel)
    try:
        sharded_m, __, generator, __ = _retail_pair(backend, seed=7)
        sharded_m.apply(generator.step())
        fingerprint = state_fingerprint(sharded_m)
        # A (day, product) pair both dimensions know but no sale ever
        # hit: the deletion reduces cleanly, then fails inside the one
        # shard that owns the (empty) group.
        live = {(row[0], row[1]) for row in sharded_m.aux_relation("sale")}
        day, product = next(
            (d, p)
            for d in range(1, 7)
            for p in range(1, 9)
            if (d, p) not in live
        )
        absent = (999_999, day, product, 1, 123)
        with pytest.raises((SelfMaintenanceError, BackendError)):
            sharded_m.apply(
                Transaction.of(Delta("sale", [], [absent]))
            )
        assert state_fingerprint(sharded_m) == fingerprint
        verify_index_consistency(sharded_m)
    finally:
        backend.close()


# ----------------------------------------------------------------------
# Skew: a hot key concentrates routing on one shard, results stay exact.
# ----------------------------------------------------------------------


def test_skewed_keys_route_to_one_shard_exactly():
    backend = ShardedBackend(n_shards=4)
    sharded_m, memory_m, __, __ = _retail_pair(backend)
    # Every row carries the same (day, product) — one group of the
    # view, hence one hash bucket.
    hot = [(100_000 + i, 1, 1, 1, 100 + i) for i in range(40)]
    tx = Transaction.of(Delta("sale", hot, []))
    sharded_m.apply(tx)
    memory_m.apply(tx)
    _assert_maintainers_match(sharded_m, memory_m, "skewed")
    routed = backend.metrics_registry().counter_group(
        SHARD_ROUTED_ROWS, "shard"
    )
    assert sum(routed.values()) == len(hot)
    assert max(routed.values()) == len(hot), (
        f"one key spread across shards: {dict(routed)}"
    )


# ----------------------------------------------------------------------
# Spec parsing, env selection, describe, metrics.
# ----------------------------------------------------------------------


def test_backend_spec_parsing():
    backend = make_backend("sharded")
    assert isinstance(backend, ShardedBackend)
    assert (backend.n_shards, backend.parallel) == (2, False)
    backend = make_backend("sharded:4")
    assert (backend.n_shards, backend.parallel) == (4, False)
    backend = make_backend("sharded:3:serial")
    assert (backend.n_shards, backend.parallel) == (3, False)
    parallel = make_backend("sharded:2:parallel")
    try:
        assert (parallel.n_shards, parallel.parallel) == (2, True)
    finally:
        parallel.close()
    assert resolve_backend_name("sharded:8:parallel") == "sharded"
    for bad in ("sharded:0", "sharded:two", "sharded:2:bogus"):
        with pytest.raises(BackendError):
            make_backend(bad)


def test_env_variable_selects_sharded_backend(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "sharded:3")
    backend = make_backend(None)
    assert isinstance(backend, ShardedBackend)
    assert backend.n_shards == 3


def test_describe_and_metrics():
    backend = ShardedBackend(n_shards=3)
    sharded_m, __, generator, __ = _retail_pair(backend)
    description = backend.describe(sharded_m.view.name)
    assert "3 shards" in description
    assert "partitioned by" in description
    registry = backend.metrics_registry()
    assert registry.gauge(SHARD_COUNT_GAUGE).value == 3
    sharded_m.apply(generator.step())
    registry = backend.metrics_registry()
    compute = registry.counter_group(SHARD_COMPUTE_SECONDS, "shard")
    assert set(compute) == {"0", "1", "2"}
    assert all(value >= 0 for value in compute.values())
