"""Tests for the synthetic workload generators."""

import pytest

from repro.catalog.database import IntegrityError
from repro.workloads.random_gen import random_scenario
from repro.workloads.retail import (
    RetailConfig,
    build_retail_database,
    paper_example_rows,
    product_sales_view,
)
from repro.workloads.snowflake import build_snowflake_database
from repro.workloads.streams import TransactionGenerator


class TestRetailGenerator:
    def test_cardinalities_match_config(self):
        config = RetailConfig(
            days=10,
            stores=3,
            products=20,
            products_sold_per_day=5,
            transactions_per_product=2,
        )
        database = build_retail_database(config)
        assert len(database.relation("time")) == 10
        assert len(database.relation("store")) == 3
        assert len(database.relation("product")) == 20
        assert len(database.relation("sale")) == config.fact_rows()
        assert config.fact_rows() == 10 * 3 * 5 * 2

    def test_integrity_holds(self):
        build_retail_database(RetailConfig(days=5)).validate_integrity()

    def test_deterministic_per_seed(self):
        a = build_retail_database(RetailConfig(days=5, seed=3))
        b = build_retail_database(RetailConfig(days=5, seed=3))
        assert a.relation("sale").rows == b.relation("sale").rows

    def test_different_seeds_differ(self):
        a = build_retail_database(RetailConfig(days=5, seed=3))
        b = build_retail_database(RetailConfig(days=5, seed=4))
        assert a.relation("sale").rows != b.relation("sale").rows

    def test_years_span(self):
        config = RetailConfig(days=730, start_year=1996)
        assert config.years == (1996, 1997)

    def test_paper_example_rows_have_expected_groups(self):
        rows = paper_example_rows()
        groups = {}
        for __, timeid, productid, __store, price in rows:
            groups[(timeid, productid)] = groups.get((timeid, productid), 0) + 1
        assert groups[(1, 1)] == 2
        assert groups[(1, 3)] == 3
        assert len(rows) == 10


class TestSnowflakeGenerator:
    def test_structure(self):
        database = build_snowflake_database(categories=4, products_per_category=3)
        database.validate_integrity()
        assert len(database.relation("category")) == 4
        assert len(database.relation("product")) == 12

    def test_product_references_category(self):
        database = build_snowflake_database()
        constraint = database.table("product").reference_for("categoryid")
        assert constraint.referenced == "category"


class TestTransactionGenerator:
    def test_stream_preserves_integrity(self):
        database = build_snowflake_database()
        generator = TransactionGenerator(database, seed=5)
        for __ in range(60):
            generator.step()  # Database.apply validates after each step

    def test_transactions_are_replayable(self):
        database = build_snowflake_database()
        replica = database.snapshot()
        generator = TransactionGenerator(database, seed=7)
        for __ in range(30):
            replica.apply(generator.step())
        for name in database.table_names:
            assert database.relation(name).same_bag(replica.relation(name))

    def test_fresh_keys_never_collide(self):
        database = build_snowflake_database()
        generator = TransactionGenerator(database, seed=9)
        seen = set(database.table("sale").key_values())
        for __ in range(40):
            transaction = generator.step()
            for row in transaction.delta_for("sale").inserted:
                assert row[0] not in seen or row[0] in {
                    d[0] for d in transaction.delta_for("sale").deleted
                }
                seen.add(row[0])

    def test_frozen_attributes_respected(self):
        database = build_snowflake_database()
        frozen = {"time": {"month", "year"}}
        generator = TransactionGenerator(
            database, seed=11, frozen_attributes=frozen
        )
        for __ in range(40):
            transaction = generator.step()
            delta = transaction.delta_for("time")
            deleted = {row[0]: row for row in delta.deleted}
            for row in delta.inserted:
                if row[0] in deleted:  # an update
                    old = deleted[row[0]]
                    assert row[1] == old[1] and row[2] == old[2]

    def test_invalid_manual_transaction_still_caught(self):
        database = build_snowflake_database()
        from repro.engine.deltas import Delta, Transaction

        with pytest.raises(IntegrityError):
            database.apply(
                Transaction.of(
                    Delta.insertion("sale", [(10**6, 1, 10**6, 1, 1)])
                )
            )


class TestRandomScenario:
    def test_deterministic(self):
        a = random_scenario(42)
        b = random_scenario(42)
        assert a.view.to_sql() == b.view.to_sql()
        for name in a.database.table_names:
            assert a.database.relation(name).rows == b.database.relation(name).rows

    def test_views_are_valid_gpsj(self):
        from repro.core.joingraph import ExtendedJoinGraph

        for seed in range(25):
            scenario = random_scenario(seed)
            graph = ExtendedJoinGraph(scenario.view, scenario.database)
            assert graph.root == "t0"

    def test_integrity_holds(self):
        for seed in range(10):
            random_scenario(seed).database.validate_integrity()
