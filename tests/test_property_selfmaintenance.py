"""Property-based end-to-end tests of the paper's central claims.

For random schemas, views, data, and valid update streams:

1. the incrementally maintained ``V`` always equals recomputation,
2. every auxiliary view always equals its defining expression,
3. ``V`` is reconstructable from ``X`` alone (when nothing was
   eliminated),

— all while the maintainer performs no base-table reads (enforced by a
sealed source in the dedicated test below).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.maintenance import SelfMaintainer
from repro.warehouse.sources import SealedSource
from repro.workloads.random_gen import random_scenario

from tests.helpers import assert_same_bag

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(seed=st.integers(0, 10_000), steps=st.integers(1, 8))
@settings(**SETTINGS)
def test_maintained_view_equals_recomputation(seed, steps):
    scenario = random_scenario(seed)
    maintainer = SelfMaintainer(scenario.view, scenario.database)
    for step in range(steps):
        transaction = scenario.generator.step()
        maintainer.apply(transaction)
        assert_same_bag(
            maintainer.current_view(),
            scenario.view.evaluate(scenario.database),
            f"seed={seed} step={step}",
        )


@given(seed=st.integers(0, 10_000), steps=st.integers(1, 6))
@settings(**SETTINGS)
def test_auxiliary_views_track_their_definitions(seed, steps):
    scenario = random_scenario(seed)
    maintainer = SelfMaintainer(scenario.view, scenario.database)
    for step in range(steps):
        maintainer.apply(scenario.generator.step())
    expected = maintainer.aux_set.materialize(scenario.database)
    for aux in maintainer.aux_set:
        assert_same_bag(
            maintainer.aux_relation(aux.table),
            expected[aux.table],
            f"seed={seed} aux={aux.table}",
        )


@given(seed=st.integers(0, 10_000), steps=st.integers(1, 6))
@settings(**SETTINGS)
def test_view_reconstructable_from_auxiliary_views(seed, steps):
    scenario = random_scenario(seed)
    maintainer = SelfMaintainer(scenario.view, scenario.database)
    for step in range(steps):
        maintainer.apply(scenario.generator.step())
    if maintainer.aux_set.eliminated:
        return  # reconstruction needs every table's auxiliary view
    rebuilt = maintainer.reconstructor.reconstruct(maintainer.aux_relations())
    assert_same_bag(
        rebuilt,
        scenario.view.evaluate(scenario.database),
        f"seed={seed}",
    )


@given(seed=st.integers(0, 10_000), steps=st.integers(1, 6))
@settings(**SETTINGS)
def test_maintenance_never_reads_sealed_sources(seed, steps):
    scenario = random_scenario(seed)
    source = SealedSource(scenario.database)
    maintainer = SelfMaintainer(scenario.view, source)
    source.seal()
    for __ in range(steps):
        maintainer.apply(scenario.generator.step())
    assert source.blocked_reads == 0
    source.unseal()
    assert_same_bag(
        maintainer.current_view(),
        scenario.view.evaluate(scenario.database),
        f"seed={seed}",
    )


@given(seed=st.integers(0, 10_000))
@settings(**SETTINGS)
def test_elimination_only_ever_hits_the_root(seed):
    """Dimensions never satisfy the transitive-dependence condition."""
    scenario = random_scenario(seed)
    maintainer = SelfMaintainer(scenario.view, scenario.database)
    assert maintainer.eliminated_tables <= {"t0"}


@given(seed=st.integers(0, 10_000), steps=st.integers(1, 5))
@settings(**SETTINGS)
def test_derivation_is_stable_under_streams(seed, steps):
    """Re-deriving the auxiliary set later yields the same definitions:
    derivation depends only on the catalog, not the data."""
    from repro.core.derivation import derive_auxiliary_views

    scenario = random_scenario(seed)
    before = derive_auxiliary_views(scenario.view, scenario.database)
    for __ in range(steps):
        scenario.generator.step()
    after = derive_auxiliary_views(scenario.view, scenario.database)
    assert before.tables == after.tables
    assert set(before.eliminated) == set(after.eliminated)
    for aux_before, aux_after in zip(before, after):
        assert aux_before.plan == aux_after.plan


@given(
    seed_a=st.integers(0, 3_000),
    seed_b=st.integers(3_001, 6_000),
)
@settings(**SETTINGS)
def test_shared_detail_recovers_every_views_auxiliaries(seed_a, seed_b):
    """Section 4 sharing: for two random views over one random schema,
    each view's auxiliary views are recoverable from the merged detail."""
    from repro.core.derivation import derive_auxiliary_views
    from repro.core.sharing import materialize_from_merged, merge_views
    from repro.workloads.random_gen import random_view

    scenario = random_scenario(seed_a)
    second = random_view(scenario, seed_b).with_name(
        scenario.view.name + "_b"
    )
    views = [scenario.view, second]
    database = scenario.database
    shared = merge_views(views, database)
    shared_relations = shared.materialize(database)
    for view in views:
        aux_set = derive_auxiliary_views(view, database)
        direct = aux_set.materialize(database)
        recovered = materialize_from_merged(aux_set, shared, shared_relations)
        for table in direct:
            assert_same_bag(recovered[table], direct[table], f"{view.name}/{table}")


@given(seed=st.integers(0, 10_000))
@settings(**SETTINGS)
def test_sql_roundtrip_on_random_views(seed):
    """view -> to_sql() -> parse_view() evaluates identically."""
    from repro.sql.parser import parse_view

    scenario = random_scenario(seed)
    sql = scenario.view.to_sql()
    reparsed = parse_view(sql, scenario.database)
    assert_same_bag(
        reparsed.evaluate(scenario.database),
        scenario.view.evaluate(scenario.database),
        f"seed={seed}",
    )
    # And the reparsed definition derives the same auxiliary plans.
    from repro.core.derivation import derive_auxiliary_views

    original = derive_auxiliary_views(scenario.view, scenario.database)
    again = derive_auxiliary_views(
        reparsed.with_name(scenario.view.name), scenario.database
    )
    assert [a.plan for a in original] == [a.plan for a in again]
