"""Tests for the baseline strategies and their storage ordering."""

from repro.core.maintenance import SelfMaintainer
from repro.warehouse.baselines import (
    FullReplicationMaintainer,
    PsjAuxiliaryMaintainer,
    derive_psj_auxiliary_views,
)
from repro.workloads.retail import (
    RetailConfig,
    build_retail_database,
    product_sales_view,
)
from repro.workloads.streams import TransactionGenerator

from tests.helpers import assert_same_bag, paper_database


def retail():
    return build_retail_database(
        RetailConfig(
            days=8,
            stores=2,
            products=10,
            products_sold_per_day=6,
            transactions_per_product=3,
            start_year=1997,
        )
    )


class TestPsjDerivation:
    def test_keys_always_retained(self):
        database = paper_database()
        aux = derive_psj_auxiliary_views(product_sales_view(1997), database)
        sale = aux.for_table("sale")
        assert "id" in sale.plan.pinned
        assert sale.plan.degenerate
        assert not sale.is_compressed

    def test_no_elimination(self):
        database = paper_database()
        aux = derive_psj_auxiliary_views(product_sales_view(1997), database)
        assert aux.eliminated == {}
        assert set(aux.tables) == {"sale", "time", "product"}

    def test_local_and_join_reductions_still_applied(self):
        database = paper_database()
        aux = derive_psj_auxiliary_views(product_sales_view(1997), database)
        relations = aux.materialize(database)
        # 1996 sales are join-reduced away; 1996 times locally reduced.
        assert len(relations["sale"]) == 8
        assert len(relations["time"]) == 3


class TestPsjMaintainer:
    def test_matches_recomputation_under_stream(self):
        database = retail()
        view = product_sales_view(1997)
        maintainer = PsjAuxiliaryMaintainer(view, database)
        generator = TransactionGenerator(database, seed=31)
        for __ in range(20):
            maintainer.apply(generator.step())
        assert_same_bag(maintainer.current_view(), view.evaluate(database))

    def test_psj_detail_exceeds_gpsj_detail(self):
        # The paper's point: duplicate compression beats PSJ detail.
        database = retail()
        view = product_sales_view(1997)
        psj = PsjAuxiliaryMaintainer(view, database)
        gpsj = SelfMaintainer(view, database)
        assert gpsj.detail_size_bytes() < psj.detail_size_bytes()

    def test_psj_fact_rows_equal_reduced_detail(self):
        database = retail()
        view = product_sales_view(1997)
        psj = PsjAuxiliaryMaintainer(view, database)
        # One PSJ auxiliary row per qualifying fact tuple.
        qualifying = [
            row
            for row in database.relation("sale")
            if row[1] <= 365  # 1997 times in this config
        ]
        assert len(psj.aux_relation("sale")) == len(qualifying)


class TestFullReplication:
    def test_matches_recomputation_under_stream(self):
        database = retail()
        view = product_sales_view(1997)
        maintainer = FullReplicationMaintainer(view, database)
        generator = TransactionGenerator(database, seed=37)
        for __ in range(20):
            maintainer.apply(generator.step())
        assert_same_bag(maintainer.current_view(), view.evaluate(database))

    def test_ignores_unreferenced_tables(self):
        database = retail()
        view = product_sales_view(1997)
        maintainer = FullReplicationMaintainer(view, database)
        generator = TransactionGenerator(database, seed=41)
        for __ in range(10):
            maintainer.apply(generator.step())  # store deltas are skipped
        assert_same_bag(maintainer.current_view(), view.evaluate(database))

    def test_replica_is_isolated_from_source(self):
        database = retail()
        maintainer = FullReplicationMaintainer(product_sales_view(1997), database)
        before = len(maintainer.replica_relation("sale"))
        database.table("sale").relation.insert(
            (10_000_000, 1, 1, 1, 5)
        )
        assert len(maintainer.replica_relation("sale")) == before


class TestStorageOrdering:
    def test_gpsj_lt_psj_lt_full(self):
        """The paper's storage hierarchy: compressed auxiliary views are
        the smallest, PSJ auxiliary views middle, full replication worst
        (local reductions can make PSJ beat replication; compression
        must beat both)."""
        database = retail()
        view = product_sales_view(1997)
        gpsj = SelfMaintainer(view, database)
        psj = PsjAuxiliaryMaintainer(view, database)
        full = FullReplicationMaintainer(view, database)
        assert gpsj.detail_size_bytes() < psj.detail_size_bytes()
        assert psj.detail_size_bytes() <= full.detail_size_bytes()
