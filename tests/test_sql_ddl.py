"""Tests for the CREATE TABLE (DDL) parser."""

import pytest

from repro.engine.types import AttributeType
from repro.sql.ddl import SqlDdlError, parse_schema, parse_table

RETAIL_DDL = """
CREATE TABLE time (
    id INT PRIMARY KEY,
    day INT,
    month INT,
    year INT
)

CREATE TABLE product (
    id INT PRIMARY KEY,
    brand STRING,
    category VARCHAR(32)
)

CREATE TABLE store (
    id INT PRIMARY KEY,
    city TEXT
)

CREATE TABLE sale (
    id INT PRIMARY KEY,
    timeid INT REFERENCES time,
    productid INT REFERENCES product(id),
    storeid INT REFERENCES store,
    price INT NOT NULL
)
"""


class TestParseSchema:
    def test_retail_schema_roundtrip(self):
        database = parse_schema(RETAIL_DDL)
        assert set(database.table_names) == {"time", "product", "store", "sale"}
        sale = database.table("sale")
        assert sale.key == "id"
        assert sale.reference_for("timeid").referenced == "time"
        assert sale.reference_for("productid").referenced == "product"
        assert sale.schema.attribute("price").atype is AttributeType.INT

    def test_type_synonyms(self):
        table = parse_table(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, a REAL, b DOUBLE, "
            "c TEXT, d CHAR(3), e BOOLEAN)"
        )
        types = {a.name: a.atype for a in table.schema}
        assert types["a"] is AttributeType.FLOAT
        assert types["b"] is AttributeType.FLOAT
        assert types["c"] is AttributeType.STRING
        assert types["d"] is AttributeType.STRING
        assert types["e"] is AttributeType.BOOL

    def test_exposed_updates_flag(self):
        table = parse_table(
            "CREATE TABLE t (id INT PRIMARY KEY) WITH EXPOSED UPDATES"
        )
        assert table.exposed_updates

    def test_default_is_not_exposed(self):
        assert not parse_table("CREATE TABLE t (id INT PRIMARY KEY)").exposed_updates

    def test_forward_references_allowed(self):
        database = parse_schema(
            """
            CREATE TABLE fact (id INT PRIMARY KEY, fk INT REFERENCES dim)
            CREATE TABLE dim (id INT PRIMARY KEY)
            """
        )
        assert database.table("fact").reference_for("fk").referenced == "dim"


class TestErrors:
    def test_missing_primary_key(self):
        with pytest.raises(SqlDdlError, match="PRIMARY KEY"):
            parse_table("CREATE TABLE t (a INT)")

    def test_two_primary_keys(self):
        with pytest.raises(SqlDdlError, match="two primary keys"):
            parse_table(
                "CREATE TABLE t (a INT PRIMARY KEY, b INT PRIMARY KEY)"
            )

    def test_duplicate_column(self):
        with pytest.raises(SqlDdlError, match="duplicate column"):
            parse_table("CREATE TABLE t (a INT PRIMARY KEY, a INT)")

    def test_unknown_type(self):
        with pytest.raises(SqlDdlError, match="unknown type"):
            parse_table("CREATE TABLE t (a BLOB PRIMARY KEY)")

    def test_reference_to_undeclared_table(self):
        with pytest.raises(SqlDdlError, match="undeclared"):
            parse_schema(
                "CREATE TABLE t (id INT PRIMARY KEY, fk INT REFERENCES ghost)"
            )

    def test_reference_to_non_key_column(self):
        with pytest.raises(SqlDdlError, match="must target the key"):
            parse_schema(
                """
                CREATE TABLE d (id INT PRIMARY KEY, other INT)
                CREATE TABLE f (id INT PRIMARY KEY, fk INT REFERENCES d(other))
                """
            )

    def test_reference_type_mismatch(self):
        with pytest.raises(SqlDdlError, match="type"):
            parse_schema(
                """
                CREATE TABLE d (id INT PRIMARY KEY)
                CREATE TABLE f (id INT PRIMARY KEY, fk STRING REFERENCES d)
                """
            )

    def test_trailing_garbage(self):
        with pytest.raises(SqlDdlError, match="trailing"):
            parse_table("CREATE TABLE t (id INT PRIMARY KEY) extra")


class TestEndToEndWithViews:
    def test_ddl_plus_view_plus_derivation(self):
        from repro.core.derivation import derive_auxiliary_views
        from repro.sql.parser import parse_view

        database = parse_schema(RETAIL_DDL)
        database.table("time").relation.insert_all(
            [(1, 1, 1, 1997), (2, 2, 1, 1997)]
        )
        database.table("product").relation.insert_all(
            [(1, "acme", "dairy")]
        )
        database.table("store").relation.insert_all([(1, "Aalborg")])
        database.table("sale").relation.insert_all(
            [(1, 1, 1, 1, 10), (2, 2, 1, 1, 20)]
        )
        database.validate_integrity()
        view = parse_view(
            "SELECT month, SUM(price) AS total FROM sale, time "
            "WHERE sale.timeid = time.id GROUP BY month",
            database,
            name="monthly",
        )
        aux = derive_auxiliary_views(view, database)
        assert aux.has_view("sale")
        assert aux.for_table("sale").is_compressed
