"""Shared test utilities: float-tolerant bag comparison and fixtures."""

from __future__ import annotations

from collections import Counter

from repro.catalog.database import Database
from repro.engine.relation import Relation
from repro.workloads.retail import paper_mini_database


def quantize(value: object) -> object:
    """Round floats so maintained and recomputed results compare exactly."""
    if isinstance(value, float):
        return round(value, 9)
    return value


def bag(relation: Relation) -> Counter:
    """A relation's rows as a float-quantized multiset."""
    return Counter(tuple(quantize(v) for v in row) for row in relation)


def assert_same_bag(actual: Relation, expected: Relation, context: str = "") -> None:
    actual_bag, expected_bag = bag(actual), bag(expected)
    if actual_bag != expected_bag:
        missing = expected_bag - actual_bag
        extra = actual_bag - expected_bag
        raise AssertionError(
            f"relations differ{' (' + context + ')' if context else ''}:\n"
            f"missing: {dict(missing)}\nextra: {dict(extra)}"
        )


def paper_database(sale_rows=None) -> Database:
    """The Section 1.1 star schema with a small, hand-written instance."""
    return paper_mini_database(sale_rows)
