"""Unit and property tests for the relational operators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.aggregates import AggregateFunction
from repro.engine.expressions import Column, Comparison, Literal
from repro.engine.operators import (
    AggregateItem,
    GroupByItem,
    OperatorError,
    antijoin,
    cross_product,
    equijoin,
    generalized_project,
    project,
    projection_schema,
    rename,
    select,
    semijoin,
    union_all,
)
from repro.engine.relation import Relation
from repro.engine.types import AttributeType

from tests.helpers import assert_same_bag


def left_relation():
    return Relation.from_columns(
        ["id", "fk", "v"],
        [AttributeType.INT] * 3,
        [(1, 10, 5), (2, 10, 7), (3, 20, 9), (4, 30, 2)],
        qualifier="l",
    )


def right_relation():
    return Relation.from_columns(
        ["id", "w"],
        [AttributeType.INT] * 2,
        [(10, 100), (20, 200), (40, 400)],
        qualifier="r",
    )


class TestSelectProject:
    def test_select(self):
        result = select(left_relation(), Comparison(">", Column("v"), Literal(5)))
        assert sorted(result.column("id")) == [2, 3]

    def test_project_distinct(self):
        result = project(left_relation(), ["l.fk"])
        assert sorted(result.rows) == [(10,), (20,), (30,)]

    def test_project_bag(self):
        result = project(left_relation(), ["l.fk"], distinct=False)
        assert len(result) == 4

    def test_rename(self):
        renamed = rename(left_relation(), "x")
        assert renamed.schema.qualified_names()[0] == "x.id"


class TestJoins:
    def test_equijoin(self):
        result = equijoin(left_relation(), right_relation(), [("l.fk", "r.id")])
        assert len(result) == 3
        assert result.schema.qualified_names() == (
            "l.id", "l.fk", "l.v", "r.id", "r.w",
        )

    def test_equijoin_no_pairs_is_cross_product(self):
        result = equijoin(left_relation(), right_relation(), [])
        assert len(result) == 12

    def test_cross_product(self):
        assert len(cross_product(left_relation(), right_relation())) == 12

    def test_semijoin(self):
        result = semijoin(left_relation(), right_relation(), [("l.fk", "r.id")])
        assert sorted(result.column("id")) == [1, 2, 3]
        assert result.schema == left_relation().schema

    def test_antijoin(self):
        result = antijoin(left_relation(), right_relation(), [("l.fk", "r.id")])
        assert result.column("id") == [4]

    def test_semijoin_antijoin_partition(self):
        left = left_relation()
        pairs = [("l.fk", "r.id")]
        kept = semijoin(left, right_relation(), pairs)
        dropped = antijoin(left, right_relation(), pairs)
        assert len(kept) + len(dropped) == len(left)

    def test_union_all(self):
        result = union_all(left_relation(), left_relation())
        assert len(result) == 8

    def test_union_arity_mismatch(self):
        with pytest.raises(OperatorError):
            union_all(left_relation(), right_relation())


class TestGeneralizedProjection:
    def test_group_by_with_aggregates(self):
        result = generalized_project(
            left_relation(),
            [
                GroupByItem(Column("fk", "l")),
                AggregateItem(AggregateFunction.SUM, Column("v", "l"), alias="sv"),
                AggregateItem(AggregateFunction.COUNT, None, alias="c"),
            ],
        )
        assert sorted(result.rows) == [(10, 12, 2), (20, 9, 1), (30, 2, 1)]

    def test_no_aggregates_is_distinct_projection(self):
        duplicated = Relation.from_columns(
            ["a"], [AttributeType.INT], [(1,), (1,), (2,)], qualifier="t"
        )
        result = generalized_project(duplicated, [GroupByItem(Column("a", "t"))])
        assert sorted(result.rows) == [(1,), (2,)]

    def test_global_aggregation_over_empty_input_is_empty(self):
        # GPSJ semantics: a group exists only with at least one tuple.
        empty = Relation(left_relation().schema)
        result = generalized_project(
            empty, [AggregateItem(AggregateFunction.COUNT, None, alias="c")]
        )
        assert len(result) == 0

    def test_distinct_aggregate(self):
        relation = Relation.from_columns(
            ["g", "x"],
            [AttributeType.INT] * 2,
            [(1, 5), (1, 5), (1, 7), (2, 5)],
            qualifier="t",
        )
        result = generalized_project(
            relation,
            [
                GroupByItem(Column("g", "t")),
                AggregateItem(
                    AggregateFunction.COUNT, Column("x", "t"), distinct=True,
                    alias="d",
                ),
            ],
        )
        assert sorted(result.rows) == [(1, 2), (2, 1)]

    def test_min_max_over_strings(self):
        relation = Relation.from_columns(
            ["s"], [AttributeType.STRING], [("b",), ("a",)], qualifier="t"
        )
        result = generalized_project(
            relation,
            [
                AggregateItem(AggregateFunction.MIN, Column("s", "t"), alias="lo"),
                AggregateItem(AggregateFunction.MAX, Column("s", "t"), alias="hi"),
            ],
        )
        assert result.rows == [("a", "b")]

    def test_output_schema_types(self):
        items = [
            GroupByItem(Column("fk", "l")),
            AggregateItem(AggregateFunction.AVG, Column("v", "l"), alias="m"),
            AggregateItem(AggregateFunction.SUM, Column("v", "l"), alias="s"),
            AggregateItem(AggregateFunction.COUNT, None, alias="c"),
        ]
        schema = projection_schema(items, left_relation().schema, qualifier="o")
        assert [a.atype for a in schema] == [
            AttributeType.INT,
            AttributeType.FLOAT,
            AttributeType.INT,
            AttributeType.INT,
        ]
        assert schema.qualified_names()[0] == "o.fk"

    def test_count_star_requires_count(self):
        with pytest.raises(OperatorError):
            AggregateItem(AggregateFunction.SUM, None)

    def test_output_names(self):
        item = AggregateItem(AggregateFunction.SUM, Column("v", "l"))
        assert item.output_name == "sum_v"
        distinct = AggregateItem(
            AggregateFunction.COUNT, Column("v", "l"), distinct=True
        )
        assert distinct.output_name == "count_distinct_v"
        star = AggregateItem(AggregateFunction.COUNT, None)
        assert star.output_name == "count_star"

    def test_to_sql(self):
        item = AggregateItem(
            AggregateFunction.COUNT, Column("brand", "product"),
            distinct=True, alias="DifferentBrands",
        )
        assert item.to_sql() == "COUNT(DISTINCT product.brand) AS DifferentBrands"
        assert GroupByItem(Column("month", "time")).to_sql() == "time.month"
        aliased = GroupByItem(Column("month", "time"), alias="m")
        assert aliased.to_sql() == "time.month AS m"


@st.composite
def grouped_rows(draw):
    n = draw(st.integers(1, 30))
    return [
        (draw(st.integers(0, 3)), draw(st.integers(-50, 50)))
        for __ in range(n)
    ]


class TestGeneralizedProjectionProperties:
    @given(grouped_rows())
    @settings(max_examples=60, deadline=None)
    def test_matches_bruteforce_grouping(self, rows):
        relation = Relation.from_columns(
            ["g", "x"], [AttributeType.INT] * 2, rows, qualifier="t"
        )
        result = generalized_project(
            relation,
            [
                GroupByItem(Column("g", "t")),
                AggregateItem(AggregateFunction.SUM, Column("x", "t"), alias="s"),
                AggregateItem(AggregateFunction.MIN, Column("x", "t"), alias="lo"),
                AggregateItem(AggregateFunction.MAX, Column("x", "t"), alias="hi"),
                AggregateItem(AggregateFunction.COUNT, None, alias="c"),
            ],
        )
        groups = {}
        for g, x in rows:
            groups.setdefault(g, []).append(x)
        expected_rows = [
            (g, sum(xs), min(xs), max(xs), len(xs)) for g, xs in groups.items()
        ]
        expected = Relation(result.schema, expected_rows, validate=False)
        assert_same_bag(result, expected)

    @given(grouped_rows())
    @settings(max_examples=40, deadline=None)
    def test_join_then_semijoin_consistency(self, rows):
        left = Relation.from_columns(
            ["k", "x"], [AttributeType.INT] * 2, rows, qualifier="a"
        )
        right = Relation.from_columns(
            ["k"], [AttributeType.INT], [(0,), (2,)], qualifier="b"
        )
        joined = equijoin(left, right, [("a.k", "b.k")])
        reduced = semijoin(left, right, [("a.k", "b.k")])
        # Every semijoin survivor appears in the join at least once.
        assert len(joined) == len(reduced)  # key join: exactly once
