"""The SQL generator's contract with the parser and the dialect.

Every statement :mod:`repro.backends.sqlgen` produces — view
recomputation queries and the per-(table, sign) maintenance stage
queries actually executed by a SQLite-backed maintainer — must unparse
with ``to_sql()`` and re-parse through
:func:`repro.sql.parser.parse_select` to an *equal* AST.  That keeps
the generated SQL inside the repo's own dialect: anything we emit, we
can read back.
"""

import pytest

from repro.backends.sqlgen import (
    NameResolver,
    SqlGenError,
    compile_logical,
    render_select,
)
from repro.backends.sqlite import SQLiteBackend
from repro.core.maintenance import SelfMaintainer
from repro.plan import logical as L
from repro.plan.planner import view_plan
from repro.sql import parse_select, parse_view
from repro.workloads.random_gen import random_scenario
from repro.workloads.streams import TransactionGenerator

from tests.helpers import paper_database


class _StaticResolver(NameResolver):
    """Base tables only, physical name ``base_<table>``."""

    def __init__(self, database):
        self._database = database

    def physical(self, source):
        return f"base_{source}"

    def schema(self, source):
        return self._database.relation(source).schema


def _roundtrip(statement, context=""):
    sql = statement.to_sql()
    reparsed = parse_select(sql)
    assert reparsed == statement, f"{context}: {sql}"


def paper_view(sql):
    database = paper_database()
    return database, parse_view(sql, database)


class TestViewPlanRoundTrip:
    VIEWS = [
        # grouped join with local condition
        """CREATE VIEW v AS
           SELECT store.city, SUM(sale.price) AS total, COUNT(*) AS n
           FROM sale, store
           WHERE sale.storeid = store.id AND sale.price > 1
           GROUP BY store.city""",
        # no group-by: aggregation over the whole input
        """CREATE VIEW v AS
           SELECT SUM(sale.price) AS total, COUNT(*) AS n
           FROM sale WHERE sale.price > 2""",
        # HAVING over an aggregate alias
        """CREATE VIEW v AS
           SELECT product.category, COUNT(*) AS n
           FROM sale, product
           WHERE sale.productid = product.id
           GROUP BY product.category
           HAVING n >= 2""",
    ]

    @pytest.mark.parametrize("sql", VIEWS)
    def test_view_statement_roundtrips(self, sql):
        database, view = paper_view(sql)
        plan = view_plan(view, database)
        compiled = compile_logical(plan.optimized, _StaticResolver(database))
        _roundtrip(compiled.statement, view.name)

    @pytest.mark.parametrize("seed", range(25))
    def test_random_view_statements_roundtrip(self, seed):
        scenario = random_scenario(seed)
        plan = view_plan(scenario.view, scenario.database)
        compiled = compile_logical(
            plan.optimized, _StaticResolver(scenario.database)
        )
        _roundtrip(compiled.statement, f"seed={seed}")

    def test_groupby_free_aggregation_filters_empty_group(self):
        database, view = paper_view(self.VIEWS[1])
        plan = view_plan(view, database)
        compiled = compile_logical(plan.optimized, _StaticResolver(database))
        sql = compiled.statement.to_sql()
        # SQL would yield one NULL row over an empty input where the
        # algebra yields none; the generator must filter it out.
        assert compiled.statement.having is not None
        assert "COUNT(*) > 0" in sql
        _roundtrip(compiled.statement)


class TestMaintenanceStageRoundTrip:
    def _executed_statements(self, seed_view_sql, steps=3):
        """Statements a SQLite maintainer actually compiled for a
        mixed insert/delete stream."""
        database, view = paper_view(seed_view_sql)
        backend = SQLiteBackend()
        maintainer = SelfMaintainer(view, database, backend=backend)
        generator = TransactionGenerator(database, seed=7)
        for _ in range(steps):
            maintainer.apply(generator.step())
        return [entry[1] for entry in backend._compiled.values()]

    def test_executed_stage_statements_roundtrip(self):
        compiled = self._executed_statements(TestViewPlanRoundTrip.VIEWS[0])
        assert compiled, "no maintenance statements were compiled"
        for query in compiled:
            _roundtrip(query.statement)

    def test_join_reduction_renders_exists(self):
        compiled = self._executed_statements(TestViewPlanRoundTrip.VIEWS[0])
        rendered = [query.statement.to_sql() for query in compiled]
        assert any("EXISTS (SELECT 1 FROM" in sql for sql in rendered), (
            "expected a key-probe semijoin as a correlated EXISTS: "
            f"{rendered}"
        )


class TestSemiAntiJoinLowering:
    def _scan(self, database, table):
        return L.Scan(table)

    def test_semijoin_is_exists(self):
        database = paper_database()
        node = L.SemiJoin(
            self._scan(database, "sale"),
            self._scan(database, "store"),
            (("sale.storeid", "store.id"),),
        )
        compiled = compile_logical(node, _StaticResolver(database))
        sql = compiled.statement.to_sql()
        assert "EXISTS (SELECT 1 FROM base_store AS store" in sql
        assert "NOT EXISTS" not in sql
        _roundtrip(compiled.statement)

    def test_antijoin_is_not_exists(self):
        database = paper_database()
        node = L.AntiJoin(
            self._scan(database, "sale"),
            self._scan(database, "store"),
            (("sale.storeid", "store.id"),),
        )
        compiled = compile_logical(node, _StaticResolver(database))
        sql = compiled.statement.to_sql()
        assert "NOT EXISTS (SELECT 1 FROM base_store AS store" in sql
        _roundtrip(compiled.statement)

    def test_execution_dialect_differs_only_on_division(self):
        database, view = paper_view(TestViewPlanRoundTrip.VIEWS[0])
        plan = view_plan(view, database)
        compiled = compile_logical(plan.optimized, _StaticResolver(database))
        assert render_select(compiled.statement) == (
            compiled.statement.to_sql()
        )

    def test_grouped_join_is_rejected(self):
        database, view = paper_view(TestViewPlanRoundTrip.VIEWS[0])
        plan = view_plan(view, database)
        with pytest.raises(SqlGenError):
            compile_logical(
                L.SemiJoin(
                    plan.optimized,
                    self._scan(database, "store"),
                    (),
                ),
                _StaticResolver(database),
            )
