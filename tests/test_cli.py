"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main

SCHEMA_SQL = """
CREATE TABLE time (id INT PRIMARY KEY, day INT, month INT, year INT)
CREATE TABLE product (id INT PRIMARY KEY, brand STRING, category STRING)
CREATE TABLE sale (
  id INT PRIMARY KEY,
  timeid INT REFERENCES time,
  productid INT REFERENCES product,
  price INT
)
"""

VIEW_SQL = """
CREATE VIEW product_sales AS
SELECT time.month, SUM(price) AS TotalPrice, COUNT(*) AS TotalCount,
       COUNT(DISTINCT brand) AS DifferentBrands
FROM sale, time, product
WHERE time.year = 1997 AND sale.timeid = time.id
  AND sale.productid = product.id
GROUP BY time.month
"""


@pytest.fixture
def files(tmp_path):
    schema = tmp_path / "schema.sql"
    schema.write_text(SCHEMA_SQL)
    view = tmp_path / "view.sql"
    view.write_text(VIEW_SQL)
    return str(schema), str(view)


class TestClassify:
    def test_prints_tables_1_and_2(self, capsys):
        assert main(["classify"]) == 0
        out = capsys.readouterr().out
        assert "COUNT(*)" in out
        assert "non-CSMAS" in out
        assert "MIN" in out

    def test_append_only_mode(self, capsys):
        assert main(["classify", "--append-only"]) == 0
        out = capsys.readouterr().out
        # MIN/MAX become CSMAS under the relaxation.
        assert out.count("non-CSMAS") == 0


class TestGraph:
    def test_prints_figure_2(self, files, capsys):
        schema, view = files
        assert main(["graph", "--schema", schema, "--view", view]) == 0
        out = capsys.readouterr().out
        assert "time [g]" in out
        assert "root table: sale" in out
        assert "Need(sale)" in out
        assert "sale depends on" in out


class TestDerive:
    def test_prints_auxiliary_views(self, files, capsys):
        schema, view = files
        assert main(["derive", "--schema", schema, "--view", view]) == 0
        out = capsys.readouterr().out
        assert "CREATE VIEW saledtl AS" in out
        assert "SUM(sale.price) AS sum_price" in out
        assert "SUM(saledtl.cnt) AS TotalCount" in out

    def test_elimination_reported(self, tmp_path, capsys):
        schema = tmp_path / "schema.sql"
        schema.write_text(SCHEMA_SQL)
        view = tmp_path / "view.sql"
        view.write_text(
            "CREATE VIEW by_product AS "
            "SELECT product.id, SUM(price) AS total, COUNT(*) AS n "
            "FROM sale, product WHERE sale.productid = product.id "
            "GROUP BY product.id"
        )
        assert main(["derive", "--schema", str(schema), "--view", str(view)]) == 0
        out = capsys.readouterr().out
        assert "X_sale omitted" in out
        assert "not reconstructable" in out

    def test_append_only_derivation(self, tmp_path, capsys):
        schema = tmp_path / "schema.sql"
        schema.write_text(SCHEMA_SQL)
        view = tmp_path / "view.sql"
        view.write_text(
            "CREATE VIEW price_range AS "
            "SELECT time.month, MIN(price) AS lo, MAX(price) AS hi "
            "FROM sale, time WHERE sale.timeid = time.id GROUP BY time.month"
        )
        assert main(
            ["derive", "--schema", str(schema), "--view", str(view), "--append-only"]
        ) == 0
        out = capsys.readouterr().out
        assert "MIN(sale.price) AS min_price" in out


class TestStorage:
    def test_paper_defaults(self, capsys):
        assert main(["storage"]) == 0
        out = capsys.readouterr().out
        assert "13,140,000,000" in out
        assert "244.8 GB" in out
        assert "167.1 MB" in out

    def test_custom_cardinalities(self, capsys):
        assert main(
            ["storage", "--days", "10", "--stores", "1", "--products", "5",
             "--sold-per-day", "5", "--transactions", "2", "--selected-days", "10"]
        ) == 0
        out = capsys.readouterr().out
        assert "100 tuples" in out  # 10*1*5*2


class TestErrorHandling:
    def test_missing_file(self, capsys):
        code = main(["derive", "--schema", "/nonexistent", "--view", "/nope"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_sql(self, tmp_path, capsys):
        schema = tmp_path / "schema.sql"
        schema.write_text("CREATE TABLE t (a INT)")  # no primary key
        view = tmp_path / "view.sql"
        view.write_text("SELECT COUNT(*) AS c FROM t")
        assert main(["derive", "--schema", str(schema), "--view", str(view)]) == 1
        assert "PRIMARY KEY" in capsys.readouterr().err

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()


class TestExplain:
    def test_narrates_derivation(self, files, capsys):
        schema, view = files
        assert main(["explain", "--schema", schema, "--view", view]) == 0
        out = capsys.readouterr().out
        assert "Derivation report" in out
        assert "smart duplicate compression" in out
        assert "Need(sale)" in out


class TestExplainAnalyze:
    def test_annotates_plans_with_observed_stats(self, files, capsys):
        schema, view = files
        assert main(
            ["explain", "--schema", schema, "--view", view,
             "--analyze", "--transactions", "15"]
        ) == 0
        out = capsys.readouterr().out
        assert "maintenance plans" in out
        assert "actual: execs=" in out
        assert "observed over 15 synthetic transactions" in out


class TestPerfCommand:
    def test_retail_stream_prints_report_and_histograms(self, capsys):
        assert main(["perf", "--retail", "--transactions", "12"]) == 0
        out = capsys.readouterr().out
        assert "transactions applied" in out
        assert "phase timings (ms):" in out
        assert "per-transaction distributions:" in out
        assert "repro_txn_latency_ms" in out

    def test_bare_ddl_schema_is_seeded(self, files, capsys):
        schema, view = files
        assert main(
            ["perf", "--schema", schema, "--view", view,
             "--transactions", "8", "--rows-per-table", "12"]
        ) == 0
        out = capsys.readouterr().out
        assert "phase timings (ms):" in out

    def test_requires_schema_or_retail(self, capsys):
        assert main(["perf"]) == 1
        assert "--retail" in capsys.readouterr().err


class TestTraceCommand:
    def test_prints_flame_tree_and_exports_jsonl(self, tmp_path, capsys):
        out_path = tmp_path / "traces.jsonl"
        assert main(
            ["trace", "--retail", "--transactions", "10",
             "--jsonl", str(out_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "slowest traced transaction:" in out
        assert "txn:product_sales" in out
        records = [
            json.loads(line)
            for line in out_path.read_text().splitlines()
            if line
        ]
        assert records
        assert {"trace", "span", "parent", "phase"} <= records[0].keys()

    def test_sample_every_reduces_traces(self, capsys):
        assert main(
            ["trace", "--retail", "--transactions", "10",
             "--sample-every", "5"]
        ) == 0
        assert "traced (sample_every=5)" in capsys.readouterr().out


class TestMetricsCommand:
    def test_prometheus_output_and_jsonl(self, tmp_path, capsys):
        out_path = tmp_path / "metrics.jsonl"
        assert main(
            ["metrics", "--retail", "--transactions", "10",
             "--jsonl", str(out_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_maintenance_events_total counter" in out
        assert "# TYPE repro_txn_latency_ms histogram" in out
        assert "repro_txn_latency_ms_bucket{le=" in out
        assert "repro_compile_cache_" in out
        records = [
            json.loads(line)
            for line in out_path.read_text().splitlines()
            if line
        ]
        assert any(record["type"] == "histogram" for record in records)


class TestShare:
    def test_merges_view_class(self, tmp_path, capsys):
        schema = tmp_path / "schema.sql"
        schema.write_text(SCHEMA_SQL)
        view_a = tmp_path / "a.sql"
        view_a.write_text(
            "SELECT month, SUM(price) AS rev FROM sale, time "
            "WHERE sale.timeid = time.id GROUP BY month"
        )
        view_b = tmp_path / "b.sql"
        view_b.write_text(
            "SELECT month, COUNT(*) AS n FROM sale, time "
            "WHERE time.year = 1997 AND sale.timeid = time.id GROUP BY month"
        )
        code = main(
            ["share", "--schema", str(schema), "--views", str(view_a), str(view_b)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "saleshared" in out
        assert "serves: view_0, view_1" in out


class TestEventsCommand:
    def test_prints_and_exports_the_event_log(self, tmp_path, capsys):
        out_path = tmp_path / "events.jsonl"
        assert main(
            ["events", "--retail", "--transactions", "8",
             "--jsonl", str(out_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "events in the ring" in out
        assert "txn.commit" in out
        records = [
            json.loads(line)
            for line in out_path.read_text().splitlines()
            if line
        ]
        assert records and all("schema" in r for r in records)

    def test_level_filter(self, capsys):
        assert main(
            ["events", "--retail", "--transactions", "8",
             "--level", "error"]
        ) == 0
        out = capsys.readouterr().out
        assert "txn.commit" not in out


class TestDoctorCommand:
    def test_healthy_exits_zero(self, capsys):
        assert main(["doctor", "--retail", "--transactions", "6"]) == 0
        out = capsys.readouterr().out
        assert "index-consistency:product_sales" in out
        assert "doctor: healthy (exit 0)" in out

    def test_planted_corruption_exits_two(self, capsys):
        # Pin the memory backend: only in-process RowIndexes can be
        # corrupted (the flag is a no-op error on plain-relation
        # backends such as sqlite).
        code = main(
            ["doctor", "--retail", "--transactions", "6",
             "--backend", "memory",
             "--plant-index-corruption", "--json"]
        )
        assert code == 2
        report = json.loads(capsys.readouterr().out)
        assert report["status"] == "unhealthy"
        assert any(
            check["status"] == "fail"
            and check["name"].startswith("index-consistency")
            for check in report["checks"]
        )


class TestTopCommand:
    def test_once_renders_a_live_server(self, capsys):
        from repro.serving.server import WarehouseServer
        from repro.warehouse.warehouse import Warehouse
        from repro.workloads.retail import product_sales_view

        from tests.helpers import paper_database

        warehouse = Warehouse(paper_database(), [product_sales_view(1997)])
        with WarehouseServer(warehouse) as server:
            assert main(["top", "--once", "--url", server.url]) == 0
        warehouse.close()
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "health   status=ok" in out
        assert "queue    depth=" in out

    def test_unreachable_endpoint_exits_one(self, capsys):
        assert main(
            ["top", "--once", "--url", "http://127.0.0.1:1"]
        ) == 1
        assert "cannot reach" in capsys.readouterr().err
