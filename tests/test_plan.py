"""Tests for the query-plan layer (repro.plan)."""

import pytest

from repro.engine.compilecache import cache_stats
from repro.engine.expressions import Column, Comparison, Literal
from repro.engine.deltas import Delta, Transaction
from repro.core.maintenance import SelfMaintainer
from repro.plan.logical import (
    DeltaScan,
    EquiJoin,
    GeneralizedProject,
    Project,
    Scan,
    Select,
    scan_sources,
)
from repro.plan.planner import (
    JoinGraphDisconnected,
    PlanPolicy,
    canonical_view_plan,
    evaluate_view,
    join_order,
    push_selections,
    view_plan,
)
from repro.warehouse.warehouse import Warehouse
from repro.workloads.retail import (
    RetailConfig,
    build_retail_database,
    product_sales_max_view,
    product_sales_view,
)
from repro.workloads.streams import TransactionGenerator

from tests.helpers import assert_same_bag, paper_database


def year_is(value):
    return Comparison("=", Column("year", "time"), Literal(value))


class TestLogicalIR:
    def test_structural_equality_and_hashing(self):
        a = Select(Scan("time"), year_is(1997))
        b = Select(Scan("time"), year_is(1997))
        c = Select(Scan("time"), year_is(1998))
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2

    def test_delta_only_property(self):
        assert DeltaScan("sale", +1).delta_only
        assert not Scan("sale").delta_only
        assert Select(DeltaScan("sale", +1), year_is(1997)).delta_only
        mixed = EquiJoin(
            DeltaScan("sale", +1), Scan("time"), (("time.id", "sale.timeid"),)
        )
        assert not mixed.delta_only

    def test_render_and_sources(self):
        plan = Select(
            EquiJoin(Scan("sale"), Scan("time"), (("time.id", "sale.timeid"),)),
            year_is(1997),
        )
        text = plan.render()
        assert "σ[time.year = 1997]" in text
        assert "⋈[time.id = sale.timeid]" in text
        assert scan_sources(plan) == frozenset({"sale", "time"})

    def test_signed_delta_scans_differ(self):
        assert DeltaScan("sale", +1) != DeltaScan("sale", -1)


class TestPlannerRewrites:
    def test_canonical_plan_shape(self):
        view = product_sales_view(1997)
        plan = canonical_view_plan(view)
        assert isinstance(plan, GeneralizedProject)
        assert scan_sources(plan) == frozenset(view.tables)

    def test_selection_pushdown_lands_on_scan(self):
        view = product_sales_view(1997)
        optimized, pushed = push_selections(canonical_view_plan(view))
        assert pushed, "the year condition should sink"
        tables = [table for __, table in pushed]
        assert "time" in tables
        # No single-table Select survives above the join tree.
        for node in optimized.walk():
            if isinstance(node, Select):
                child = node.child
                assert isinstance(child, (Scan, DeltaScan, Select)) or (
                    len(node.condition.qualifiers()) != 1
                )

    def test_view_plan_annotations(self):
        database = paper_database()
        plan = view_plan(product_sales_view(1997), database)
        rendered = plan.physical.render()
        assert "selection pushed to base-table scan" in rendered
        assert "projection pruned to join + preserved attributes" in rendered
        assert plan.pushed and plan.pruned
        for __, kept in plan.pruned:
            assert kept  # never prune to nothing

    def test_pruned_projections_are_bag_projections(self):
        database = paper_database()
        plan = view_plan(product_sales_view(1997), database)
        for node in plan.optimized.walk():
            if isinstance(node, Project):
                assert node.distinct is False

    def test_view_plan_is_cached(self):
        database = paper_database()
        view = product_sales_view(1997)
        assert view_plan(view, database) is view_plan(view, database)

    def test_join_order_raises_on_disconnected_graph(self):
        with pytest.raises(JoinGraphDisconnected):
            join_order(["a", "b"], [], on_stuck="raise")

    def test_join_order_cross_fallback(self):
        steps = join_order(["a", "b"], [], on_stuck="cross")
        assert steps == [("a", None), ("b", ())]


class TestPlanEvaluation:
    def test_plan_matches_eager_bit_for_bit(self):
        database = paper_database()
        for view in (product_sales_view(1997), product_sales_max_view()):
            planned = evaluate_view(view, database)
            eager = view.evaluate_eager(database)
            assert planned.schema == eager.schema
            assert planned.rows == eager.rows  # identical order, not just bag

    def test_view_evaluate_routes_through_plans(self):
        database = paper_database()
        view = product_sales_view(1997)
        assert view.evaluate(database).rows == view.evaluate_eager(database).rows

    def test_compile_cache_is_exercised(self):
        database = paper_database()
        view = product_sales_view(1997)
        before = cache_stats()["hits"]
        view.evaluate(database)
        view.evaluate(database)
        assert cache_stats()["hits"] > before


def small_retail_warehouse():
    database = build_retail_database(
        RetailConfig(
            days=6,
            stores=2,
            products=8,
            products_sold_per_day=4,
            transactions_per_product=2,
            start_year=1997,
        )
    )
    warehouse = Warehouse(database)
    warehouse.register(product_sales_view(1997))
    warehouse.register(product_sales_max_view())
    return database, warehouse


class TestMaintenancePlans:
    def test_policy_mapping(self):
        database = paper_database()
        view = product_sales_view(1997)
        assert SelfMaintainer(view, database).policy is PlanPolicy.INDEXED
        assert (
            SelfMaintainer(view, database, hotpath=False).policy
            is PlanPolicy.NAIVE
        )

    def test_delta_plans_are_cached_per_shape(self):
        database = paper_database()
        maintainer = SelfMaintainer(product_sales_view(1997), database)
        assert maintainer.delta_plans("sale", +1) is maintainer.delta_plans(
            "sale", +1
        )
        assert maintainer.delta_plans("sale", +1) is not maintainer.delta_plans(
            "sale", -1
        )

    def test_both_policies_maintain_identically(self):
        database_a = paper_database()
        database_b = paper_database()
        view = product_sales_view(1997)
        indexed = SelfMaintainer(view, database_a)
        naive = SelfMaintainer(view, database_b, hotpath=False)
        generator = TransactionGenerator(database_a, seed=11)
        for __ in range(15):
            transaction = generator.step()
            database_b.apply(transaction)
            indexed.apply(transaction)
            naive.apply(transaction)
        assert_same_bag(indexed.current_view(), naive.current_view())
        assert_same_bag(indexed.current_view(), view.evaluate(database_a))

    def test_set_restriction_off_is_result_identical(self):
        database_a = paper_database()
        database_b = paper_database()
        view = product_sales_view(1997)
        restricted = SelfMaintainer(view, database_a)
        unrestricted = SelfMaintainer(view, database_b)
        unrestricted.set_restriction(False)
        generator = TransactionGenerator(database_a, seed=7)
        for __ in range(12):
            transaction = generator.step()
            database_b.apply(transaction)
            restricted.apply(transaction)
            unrestricted.apply(transaction)
        assert_same_bag(restricted.current_view(), unrestricted.current_view())
        assert_same_bag(restricted.current_view(), view.evaluate(database_a))

    def test_plan_node_timings_recorded(self):
        database = paper_database()
        maintainer = SelfMaintainer(product_sales_view(1997), database)
        transaction = Transaction.of(
            Delta.insertion("sale", [(100, 1, 1, 1, 5)])
        )
        database.apply(transaction)
        maintainer.apply(transaction)
        plan_keys = [k for k in maintainer.perf.seconds if k.startswith("plan:")]
        assert plan_keys, "per-node timings should accumulate under plan:*"
        rendered = maintainer.perf.render()
        assert "plan:" in rendered


class TestWarehouseSharing:
    def test_shared_subplans_hit_across_views(self):
        database, warehouse = small_retail_warehouse()
        generator = TransactionGenerator(database, seed=3)
        for __ in range(10):
            warehouse.apply(generator.step())
        hits = sum(
            warehouse.maintainer(name).perf.counters.get("plan_shared_hits", 0)
            for name in warehouse.view_names
        )
        assert hits >= 1, "two views over sale should share the delta subplan"
        for name, view in (
            ("product_sales", product_sales_view(1997)),
            ("product_sales_max", product_sales_max_view()),
        ):
            assert_same_bag(warehouse.summary(name), view.evaluate(database))

    def test_merged_perf_report(self):
        database, warehouse = small_retail_warehouse()
        generator = TransactionGenerator(database, seed=5)
        for __ in range(4):
            warehouse.apply(generator.step())
        merged = warehouse.perf_report()
        per_view = [warehouse.perf_report(n) for n in warehouse.view_names]
        assert "transactions" in merged
        assert "plan:" in merged
        total = sum(
            warehouse.maintainer(n).perf.counters["transactions"]
            for n in warehouse.view_names
        )
        assert f"{total}" in merged
        for report in per_view:
            assert "transactions" in report

    def test_explain_plans_report(self):
        __, warehouse = small_retail_warehouse()
        report = warehouse.explain_plans()
        for name in warehouse.view_names:
            assert f"view {name}" in report
        assert "selection pushed" in report
        assert "index-backed" in report
        assert "shared across views: product_sales, product_sales_max" in report
