"""Targeted tests for corners the mainline suites do not reach."""

import pytest

from repro.core.derivation import derive_auxiliary_views
from repro.core.maintenance import SelfMaintainer
from repro.core.rewrite import Reconstructor
from repro.core.view import JoinCondition, make_view
from repro.engine.aggregates import AggregateFunction
from repro.engine.deltas import Delta, Transaction
from repro.engine.expressions import Column, Comparison, Literal
from repro.engine.operators import AggregateItem, GroupByItem
from repro.sql.parser import SqlParseError, parse_view
from repro.warehouse.warehouse import Warehouse
from repro.workloads.random_gen import random_scenario, random_view
from repro.workloads.snowflake import (
    build_snowflake_database,
    category_sales_by_product_view,
)
from repro.workloads.streams import TransactionGenerator

from tests.helpers import assert_same_bag, paper_database


class TestStorageReportWithElimination:
    def test_eliminated_table_absent_from_ledger(self):
        database = build_snowflake_database()
        warehouse = Warehouse(database)
        warehouse.register(category_sales_by_product_view())
        report = warehouse.storage_report("product_revenue")
        assert report.eliminated == ("sale",)
        assert "sale" not in report.per_auxiliary
        assert report.detail_bytes == sum(report.per_auxiliary.values())


class TestDegenerateRootReconstruction:
    def test_root_with_key_groupby_reconstructs(self):
        # Grouping on sale.id degenerates the root auxiliary view: the
        # reconstruction multiplicity must fall back to 1.
        database = paper_database()
        view = make_view(
            "per_sale",
            ("sale", "time"),
            [
                GroupByItem(Column("id", "sale")),
                GroupByItem(Column("month", "time")),
                AggregateItem(
                    AggregateFunction.SUM, Column("price", "sale"), alias="p"
                ),
            ],
            joins=[JoinCondition("sale", "timeid", "time", "id")],
        )
        aux = derive_auxiliary_views(view, database)
        assert aux.for_table("sale").plan.degenerate
        reconstructor = Reconstructor(view, aux, database)
        rebuilt = reconstructor.reconstruct(aux.materialize(database))
        assert_same_bag(rebuilt, view.evaluate(database))
        sql = reconstructor.to_sql()
        assert "COUNT(*)" not in sql or "SUM(" in sql

    def test_degenerate_root_maintenance(self):
        database = paper_database()
        view = make_view(
            "per_sale",
            ("sale",),
            [
                GroupByItem(Column("id", "sale")),
                AggregateItem(
                    AggregateFunction.SUM, Column("price", "sale"), alias="p"
                ),
            ],
        )
        maintainer = SelfMaintainer(view, database)
        transaction = Transaction.of(
            Delta.insertion("sale", [(700, 1, 1, 1, 55)]),
        )
        database.apply(transaction)
        maintainer.apply(transaction)
        assert_same_bag(maintainer.current_view(), view.evaluate(database))


class TestParserCorners:
    def test_negative_literal(self):
        view = parse_view(
            "SELECT COUNT(*) AS c FROM sale WHERE price > -5",
            paper_database(),
            name="v",
        )
        assert len(view.evaluate(paper_database())) == 1

    def test_parenthesized_arithmetic(self):
        view = parse_view(
            "SELECT COUNT(*) AS c FROM sale WHERE (price + 1) * 2 > 21",
            paper_database(),
            name="v",
        )
        expected = parse_view(
            "SELECT COUNT(*) AS c FROM sale WHERE price > 9",
            paper_database(),
            name="v",
        )
        database = paper_database()
        assert_same_bag(view.evaluate(database), expected.evaluate(database))

    def test_column_compared_to_column_same_table_is_local(self):
        view = parse_view(
            "SELECT COUNT(*) AS c FROM time WHERE day < month",
            paper_database(),
            name="v",
        )
        assert view.joins == ()
        assert len(view.selection) == 1

    def test_empty_select_list_rejected(self):
        with pytest.raises(SqlParseError):
            parse_view("SELECT FROM sale", paper_database(), name="v")

    def test_missing_from_rejected(self):
        with pytest.raises(SqlParseError):
            parse_view("SELECT COUNT(*) AS c", paper_database(), name="v")


class TestStreamsWithValueMakers:
    def test_custom_maker_controls_insertions(self):
        database = paper_database()

        def make_product(rng, key):
            return (key, f"maker_{rng.randint(0, 9)}", "made")

        generator = TransactionGenerator(
            database, seed=3, value_makers={"product": make_product}
        )
        made = []
        for __ in range(30):
            transaction = generator.step()
            made.extend(
                row
                for row in transaction.delta_for("product").inserted
                if row[2] == "made"
            )
        assert made  # the maker was actually used
        database.validate_integrity()


class TestRandomViewHelper:
    def test_random_view_is_valid_over_scenario_schema(self):
        scenario = random_scenario(99)
        for seed in range(5):
            view = random_view(scenario, seed)
            # It must evaluate without errors over the scenario database.
            view.evaluate(scenario.database)

    def test_random_views_differ_across_seeds(self):
        scenario = random_scenario(99)
        views = {random_view(scenario, seed).to_sql() for seed in range(8)}
        assert len(views) > 1


class TestBooleanColumns:
    def test_bool_grouping_and_maintenance(self):
        from repro.catalog.database import BaseTable, Database
        from repro.engine.types import AttributeType

        database = Database()
        database.add_table(
            BaseTable(
                "event",
                {
                    "id": AttributeType.INT,
                    "flagged": AttributeType.BOOL,
                    "cost": AttributeType.INT,
                },
                key="id",
                rows=[(1, True, 5), (2, False, 7), (3, True, 2)],
            )
        )
        view = make_view(
            "by_flag",
            ("event",),
            [
                GroupByItem(Column("flagged", "event")),
                AggregateItem(
                    AggregateFunction.SUM, Column("cost", "event"), alias="s"
                ),
            ],
        )
        maintainer = SelfMaintainer(view, database)
        transaction = Transaction.of(
            Delta.insertion("event", [(4, True, 10)]),
            )
        database.apply(transaction)
        maintainer.apply(transaction)
        assert_same_bag(maintainer.current_view(), view.evaluate(database))
        rows = dict(maintainer.current_view().rows)
        assert rows[True] == 17


class TestSelectionOnlyRootCondition:
    def test_local_condition_on_root(self):
        database = paper_database()
        view = make_view(
            "expensive",
            ("sale", "time"),
            [
                GroupByItem(Column("month", "time")),
                AggregateItem(AggregateFunction.COUNT, None, alias="n"),
            ],
            selection=[Comparison(">=", Column("price", "sale"), Literal(10))],
            joins=[JoinCondition("sale", "timeid", "time", "id")],
        )
        maintainer = SelfMaintainer(view, database)
        # A cheap sale is locally reduced away before anything else.
        transaction = Transaction.of(
            Delta.insertion("sale", [(800, 1, 1, 1, 1)])
        )
        database.apply(transaction)
        before = maintainer.current_view().as_multiset()
        maintainer.apply(transaction)
        assert maintainer.current_view().as_multiset() == before
        assert_same_bag(maintainer.current_view(), view.evaluate(database))
