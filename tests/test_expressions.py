"""Unit tests for the expression language."""

import pytest

from repro.engine.expressions import (
    And,
    Arithmetic,
    Column,
    Comparison,
    ExpressionError,
    InList,
    Literal,
    Not,
    Or,
    TRUE,
    conjoin,
    conjuncts,
)
from repro.engine.schema import Attribute, Schema
from repro.engine.types import AttributeType


SCHEMA = Schema(
    [
        Attribute("a", AttributeType.INT, "t"),
        Attribute("b", AttributeType.INT, "t"),
        Attribute("s", AttributeType.STRING, "u"),
    ]
)
ROW = (4, 7, "x")


def evaluate(expression, row=ROW, schema=SCHEMA):
    return expression.compile(schema)(row)


class TestBasics:
    def test_column(self):
        assert evaluate(Column("a", "t")) == 4
        assert evaluate(Column("s")) == "x"

    def test_column_parse(self):
        assert Column.parse("t.a") == Column("a", "t")
        assert Column.parse("a") == Column("a")

    def test_literal(self):
        assert evaluate(Literal(42)) == 42

    def test_comparisons(self):
        assert evaluate(Comparison("=", Column("a"), Literal(4)))
        assert evaluate(Comparison("<", Column("a"), Column("b")))
        assert not evaluate(Comparison(">=", Column("a"), Literal(5)))
        assert evaluate(Comparison("<>", Column("a"), Literal(5)))
        assert evaluate(Comparison("!=", Column("a"), Literal(5)))
        assert evaluate(Comparison("<=", Column("a"), Literal(4)))

    def test_unknown_comparison_operator(self):
        with pytest.raises(ExpressionError):
            Comparison("~", Column("a"), Literal(1))

    def test_arithmetic(self):
        expr = Arithmetic("+", Column("a"), Arithmetic("*", Column("b"), Literal(2)))
        assert evaluate(expr) == 18
        assert evaluate(Arithmetic("-", Column("b"), Column("a"))) == 3
        assert evaluate(Arithmetic("/", Column("b"), Literal(2))) == 3.5

    def test_unknown_arithmetic_operator(self):
        with pytest.raises(ExpressionError):
            Arithmetic("%", Column("a"), Literal(2))


class TestLogic:
    def test_and_flattens(self):
        inner = And(Comparison("=", Column("a"), Literal(4)))
        outer = And(inner, Comparison("=", Column("b"), Literal(7)))
        assert len(outer.conditions) == 2
        assert evaluate(outer)

    def test_empty_and_is_true(self):
        assert evaluate(TRUE)

    def test_or(self):
        expr = Or(
            Comparison("=", Column("a"), Literal(0)),
            Comparison("=", Column("b"), Literal(7)),
        )
        assert evaluate(expr)

    def test_empty_or_is_false(self):
        assert not evaluate(Or())

    def test_not(self):
        assert evaluate(Not(Comparison("=", Column("a"), Literal(0))))

    def test_in_list(self):
        assert evaluate(InList(Column("a"), [1, 4, 9]))
        assert not evaluate(InList(Column("a"), [1, 9]))


class TestStructure:
    def test_columns_collects_references(self):
        expr = And(
            Comparison("=", Column("a", "t"), Literal(1)),
            Comparison("<", Column("s", "u"), Column("b", "t")),
        )
        assert set(expr.columns()) == {
            Column("a", "t"),
            Column("s", "u"),
            Column("b", "t"),
        }

    def test_qualifiers(self):
        expr = Comparison("=", Column("a", "t"), Column("s", "u"))
        assert expr.qualifiers() == {"t", "u"}

    def test_substitute(self):
        expr = Comparison("=", Column("a"), Literal(1))
        rewritten = expr.substitute({Column("a"): Column("a", "t")})
        assert rewritten.left == Column("a", "t")

    def test_substitute_recurses_into_logic(self):
        expr = And(Not(InList(Column("a"), [1])))
        rewritten = expr.substitute({Column("a"): Column("b", "t")})
        assert Column("b", "t") in rewritten.columns()

    def test_conjuncts_and_conjoin(self):
        c1 = Comparison("=", Column("a"), Literal(1))
        c2 = Comparison("=", Column("b"), Literal(2))
        assert conjuncts(And(c1, c2)) == (c1, c2)
        assert conjuncts(c1) == (c1,)
        assert conjuncts(None) == ()
        assert conjoin([c1]) is c1
        assert isinstance(conjoin([c1, c2]), And)


class TestSqlRendering:
    def test_comparison_sql(self):
        expr = Comparison("=", Column("year", "time"), Literal(1997))
        assert expr.to_sql() == "time.year = 1997"

    def test_string_literal_escaping(self):
        assert Literal("o'brien").to_sql() == "'o''brien'"

    def test_bool_literals(self):
        assert Literal(True).to_sql() == "TRUE"
        assert Literal(False).to_sql() == "FALSE"

    def test_logic_sql(self):
        c = Comparison("=", Column("a"), Literal(1))
        assert And(c, c).to_sql() == "a = 1 AND a = 1"
        assert Or(c, c).to_sql() == "(a = 1 OR a = 1)"
        assert Not(c).to_sql() == "NOT (a = 1)"
        assert TRUE.to_sql() == "TRUE"

    def test_in_list_sql(self):
        assert InList(Column("a"), [1, 2]).to_sql() == "a IN (1, 2)"

    def test_arithmetic_sql(self):
        expr = Arithmetic("*", Column("price"), Column("cnt"))
        assert expr.to_sql() == "(price * cnt)"
