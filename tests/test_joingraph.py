"""Tests for the extended join graph, Need functions, and dependence."""

import pytest

from repro.catalog.database import BaseTable, Database
from repro.core.joingraph import Annotation, ExtendedJoinGraph, JoinGraphError
from repro.core.view import JoinCondition, make_view
from repro.engine.aggregates import AggregateFunction
from repro.engine.expressions import Column
from repro.engine.operators import AggregateItem, GroupByItem
from repro.engine.types import AttributeType
from repro.workloads.retail import product_sales_view
from repro.workloads.snowflake import (
    build_snowflake_database,
    category_sales_view,
)

from tests.helpers import paper_database


def star_graph():
    return ExtendedJoinGraph(product_sales_view(1997), paper_database())


def snowflake_graph(view=None):
    database = build_snowflake_database()
    return ExtendedJoinGraph(view or category_sales_view(), database), database


class TestConstruction:
    def test_figure_2_structure(self):
        graph = star_graph()
        assert graph.root == "sale"
        assert set(graph.children("sale")) == {"time", "product"}
        assert graph.parent("time") == "sale"
        assert graph.parent("sale") is None

    def test_figure_2_annotations(self):
        graph = star_graph()
        assert graph.annotation("time") is Annotation.GROUP
        assert graph.annotation("sale") is Annotation.NONE
        assert graph.annotation("product") is Annotation.NONE

    def test_key_annotation(self):
        view = make_view(
            "v",
            ("sale", "time"),
            [
                GroupByItem(Column("id", "time")),
                AggregateItem(AggregateFunction.COUNT, None, alias="c"),
            ],
            joins=[JoinCondition("sale", "timeid", "time", "id")],
        )
        graph = ExtendedJoinGraph(view, paper_database())
        assert graph.annotation("time") is Annotation.KEY

    def test_render_matches_figure_2(self):
        text = star_graph().render()
        assert text.splitlines()[0] == "sale"
        assert "time [g]" in text
        assert "product" in text

    def test_non_key_join_rejected(self):
        view = make_view(
            "v",
            ("sale", "time"),
            [AggregateItem(AggregateFunction.COUNT, None, alias="c")],
            joins=[JoinCondition("sale", "timeid", "time", "month")],
        )
        with pytest.raises(JoinGraphError, match="key"):
            ExtendedJoinGraph(view, paper_database())

    def test_two_incoming_edges_rejected(self):
        # sale joins time twice through different attributes: not a tree.
        view = make_view(
            "v",
            ("sale", "time", "product"),
            [AggregateItem(AggregateFunction.COUNT, None, alias="c")],
            joins=[
                JoinCondition("sale", "timeid", "time", "id"),
                JoinCondition("product", "id", "time", "id"),
            ],
        )
        with pytest.raises(JoinGraphError, match="tree"):
            ExtendedJoinGraph(view, paper_database())

    def test_disconnected_graph_rejected(self):
        view = make_view(
            "v",
            ("sale", "time"),
            [AggregateItem(AggregateFunction.COUNT, None, alias="c")],
        )
        with pytest.raises(JoinGraphError, match="root"):
            ExtendedJoinGraph(view, paper_database())

    def test_single_table_graph(self):
        view = make_view(
            "v", ("sale",), [AggregateItem(AggregateFunction.COUNT, None, alias="c")]
        )
        graph = ExtendedJoinGraph(view, paper_database())
        assert graph.root == "sale"
        assert graph.subtree("sale") == ("sale",)


class TestDependence:
    def test_star_dependencies(self):
        graph = star_graph()
        assert set(graph.depends_on("sale")) == {"time", "product"}
        assert graph.depends_on("time") == ()
        assert graph.transitively_depends_on_all("sale")
        assert not graph.transitively_depends_on_all("time")

    def test_snowflake_transitive_dependence(self):
        graph, __ = snowflake_graph()
        assert graph.transitively_depends_on("sale") == {
            "time", "product", "category",
        }
        assert graph.transitively_depends_on("product") == {"category"}

    def test_exposed_updates_break_dependence(self):
        database = paper_database()
        database.table("time").exposed_updates = True
        graph = ExtendedJoinGraph(product_sales_view(1997), database)
        assert set(graph.depends_on("sale")) == {"product"}
        assert not graph.transitively_depends_on_all("sale")

    def test_missing_integrity_breaks_dependence(self):
        database = Database()
        database.add_table(
            BaseTable("d", {"id": AttributeType.INT}, key="id", rows=[(1,)])
        )
        database.add_table(
            BaseTable(
                "f",
                {"id": AttributeType.INT, "fk": AttributeType.INT},
                key="id",
                rows=[(1, 1)],  # no declared reference to d
            )
        )
        view = make_view(
            "v",
            ("f", "d"),
            [AggregateItem(AggregateFunction.COUNT, None, alias="c")],
            joins=[JoinCondition("f", "fk", "d", "id")],
        )
        graph = ExtendedJoinGraph(view, database)
        assert graph.depends_on("f") == ()


class TestNeedFunctions:
    def test_paper_example_need_sets(self):
        graph = star_graph()
        # Sale is the root; time is its only g-annotated child.
        assert graph.need("sale") == {"time"}
        # Dimensions need the chain up to the root.
        assert graph.need("time") == {"sale", "time"}
        assert graph.need("product") == {"sale", "time"}

    def test_needed_by(self):
        graph = star_graph()
        assert graph.needed_by("sale") == {"time", "product"}
        assert graph.needed_by("product") == frozenset()

    def test_key_annotated_vertex_needs_nothing(self):
        view = make_view(
            "v",
            ("sale", "time"),
            [
                GroupByItem(Column("id", "time")),
                AggregateItem(AggregateFunction.COUNT, None, alias="c"),
            ],
            joins=[JoinCondition("sale", "timeid", "time", "id")],
        )
        graph = ExtendedJoinGraph(view, paper_database())
        assert graph.need("time") == frozenset()
        assert graph.need("sale") == {"time"}
        assert graph.needed_by("sale") == frozenset()

    def test_need_zero_skips_key_subtrees(self):
        # Group on product.id and time.month: Need0(sale) includes time
        # (g) and product (k) but nothing below product.
        database = build_snowflake_database()
        view = make_view(
            "v",
            ("sale", "time", "product", "category"),
            [
                GroupByItem(Column("month", "time")),
                GroupByItem(Column("id", "product")),
                AggregateItem(AggregateFunction.COUNT, None, alias="c"),
            ],
            joins=[
                JoinCondition("sale", "timeid", "time", "id"),
                JoinCondition("sale", "productid", "product", "id"),
                JoinCondition("product", "categoryid", "category", "id"),
            ],
        )
        graph = ExtendedJoinGraph(view, database)
        assert graph.need_zero("sale") == {"time", "product"}
        assert "category" not in graph.need_zero("sale")

    def test_snowflake_chained_need(self):
        graph, __ = snowflake_graph()
        # category is g-annotated at depth 2.
        assert graph.need("category") == {"product", "sale", "time", "category"}
        assert graph.need("sale") == {"time", "product", "category"}

    def test_no_group_bys_need_zero_empty(self):
        view = make_view(
            "v",
            ("sale", "time"),
            [AggregateItem(AggregateFunction.COUNT, None, alias="c")],
            joins=[JoinCondition("sale", "timeid", "time", "id")],
        )
        graph = ExtendedJoinGraph(view, paper_database())
        assert graph.need("sale") == frozenset()


class TestSubtree:
    def test_subtree_collects_descendants(self):
        graph, __ = snowflake_graph()
        assert set(graph.subtree("product")) == {"product", "category"}
        assert set(graph.subtree("sale")) == {
            "sale", "time", "product", "category",
        }
