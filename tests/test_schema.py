"""Unit tests for schemas and qualified attribute resolution."""

import pytest

from repro.engine.schema import Attribute, Schema, SchemaError
from repro.engine.types import AttributeType


def make_schema() -> Schema:
    return Schema(
        [
            Attribute("id", AttributeType.INT, "sale"),
            Attribute("price", AttributeType.INT, "sale"),
            Attribute("id", AttributeType.INT, "time"),
            Attribute("month", AttributeType.INT, "time"),
        ]
    )


class TestLookup:
    def test_qualified_lookup(self):
        schema = make_schema()
        assert schema.index_of("id", "sale") == 0
        assert schema.index_of("id", "time") == 2

    def test_dotted_lookup(self):
        schema = make_schema()
        assert schema.index_of("time.month") == 3

    def test_explicit_qualifier_beats_dotted(self):
        schema = make_schema()
        assert schema.index_of("id", "time") == 2

    def test_unambiguous_bare_lookup(self):
        schema = make_schema()
        assert schema.index_of("price") == 1

    def test_ambiguous_bare_lookup_raises(self):
        schema = make_schema()
        with pytest.raises(SchemaError, match="ambiguous"):
            schema.index_of("id")

    def test_missing_attribute_raises(self):
        schema = make_schema()
        with pytest.raises(SchemaError, match="no attribute"):
            schema.index_of("colour")

    def test_has(self):
        schema = make_schema()
        assert schema.has("price")
        assert schema.has("id", "sale")
        assert not schema.has("id")  # ambiguous counts as absent
        assert not schema.has("colour")


class TestConstruction:
    def test_duplicate_qualified_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema(
                [
                    Attribute("id", AttributeType.INT, "t"),
                    Attribute("id", AttributeType.INT, "t"),
                ]
            )

    def test_same_name_different_qualifiers_allowed(self):
        schema = make_schema()
        assert len(schema) == 4

    def test_concat(self):
        left = Schema([Attribute("a", AttributeType.INT, "x")])
        right = Schema([Attribute("b", AttributeType.INT, "y")])
        combined = left.concat(right)
        assert combined.qualified_names() == ("x.a", "y.b")

    def test_project(self):
        schema = make_schema()
        projected = schema.project(["time.month", "sale.price"])
        assert projected.qualified_names() == ("time.month", "sale.price")

    def test_with_qualifier(self):
        schema = make_schema().project(["sale.id", "price"]).with_qualifier("v")
        assert all(a.qualifier == "v" for a in schema)

    def test_with_qualifier_detects_collisions(self):
        # Both sale.id and time.id would become v.id.
        with pytest.raises(SchemaError, match="duplicate"):
            make_schema().with_qualifier("v")

    def test_equality_and_hash(self):
        assert make_schema() == make_schema()
        assert hash(make_schema()) == hash(make_schema())


class TestRowValidation:
    def test_valid_row_coerced(self):
        schema = Schema([Attribute("x", AttributeType.FLOAT)])
        assert schema.validate_row((3,)) == (3.0,)

    def test_arity_mismatch_raises(self):
        schema = make_schema()
        with pytest.raises(SchemaError, match="arity"):
            schema.validate_row((1, 2))

    def test_type_mismatch_raises(self):
        schema = Schema([Attribute("x", AttributeType.INT)])
        with pytest.raises(TypeError):
            schema.validate_row(("not an int",))


class TestStorageModel:
    def test_row_width_defaults_to_four_bytes_per_field(self):
        assert make_schema().row_width_bytes() == 16

    def test_explicit_size_override(self):
        schema = Schema(
            [Attribute("name", AttributeType.STRING, size_bytes=20)]
        )
        assert schema.row_width_bytes() == 20


class TestAttribute:
    def test_qualified_name(self):
        assert Attribute("a", AttributeType.INT, "t").qualified_name == "t.a"
        assert Attribute("a", AttributeType.INT).qualified_name == "a"

    def test_renamed_preserves_type(self):
        attribute = Attribute("a", AttributeType.STRING, "t")
        renamed = attribute.renamed("b")
        assert renamed.name == "b"
        assert renamed.atype is AttributeType.STRING
        assert renamed.qualifier == "t"

    def test_matches(self):
        attribute = Attribute("a", AttributeType.INT, "t")
        assert attribute.matches("a")
        assert attribute.matches("a", "t")
        assert not attribute.matches("a", "u")
        assert not attribute.matches("b")
