"""Unit tests for relations (bags of typed rows)."""

import pytest

from repro.engine.relation import Relation, RelationError
from repro.engine.schema import Attribute, Schema
from repro.engine.types import AttributeType


def make_relation(rows=((1, "a"), (2, "b"), (2, "b"))):
    return Relation.from_columns(
        ["id", "tag"],
        [AttributeType.INT, AttributeType.STRING],
        rows,
        qualifier="t",
    )


class TestConstruction:
    def test_from_columns_qualifies(self):
        relation = make_relation()
        assert relation.schema.qualified_names() == ("t.id", "t.tag")

    def test_rows_validated(self):
        with pytest.raises(TypeError):
            make_relation([("one", "a")])

    def test_len_bool_iter(self):
        relation = make_relation()
        assert len(relation) == 3
        assert bool(relation)
        assert not Relation(relation.schema)
        assert sorted(relation)[0] == (1, "a")

    def test_copy_is_independent(self):
        relation = make_relation()
        clone = relation.copy()
        clone.insert((3, "c"))
        assert len(relation) == 3
        assert len(clone) == 4


class TestBagSemantics:
    def test_duplicates_allowed(self):
        relation = make_relation()
        assert relation.as_multiset()[(2, "b")] == 2

    def test_delete_removes_one_occurrence(self):
        relation = make_relation()
        relation.delete((2, "b"))
        assert relation.as_multiset()[(2, "b")] == 1

    def test_delete_absent_row_raises(self):
        relation = make_relation()
        with pytest.raises(RelationError):
            relation.delete((9, "z"))

    def test_delete_all_batch(self):
        relation = make_relation()
        relation.delete_all([(2, "b"), (2, "b")])
        assert relation.as_multiset()[(2, "b")] == 0
        assert len(relation) == 1

    def test_delete_all_missing_raises_and_reports(self):
        relation = make_relation()
        with pytest.raises(RelationError, match="absent"):
            relation.delete_all([(2, "b"), (9, "z")])

    def test_delete_where(self):
        relation = make_relation()
        removed = relation.delete_where(lambda row: row[0] == 2)
        assert len(removed) == 2
        assert len(relation) == 1

    def test_same_bag_ignores_order(self):
        left = make_relation([(1, "a"), (2, "b")])
        right = make_relation([(2, "b"), (1, "a")])
        assert left.same_bag(right)

    def test_same_bag_respects_multiplicity(self):
        left = make_relation([(1, "a"), (1, "a")])
        right = make_relation([(1, "a")])
        assert not left.same_bag(right)

    def test_same_bag_arity_mismatch(self):
        other = Relation.from_columns(["x"], [AttributeType.INT], [(1,)])
        assert not make_relation().same_bag(other)


class TestAccessors:
    def test_column(self):
        relation = make_relation()
        assert relation.column("id") == [1, 2, 2]
        assert relation.column("tag", "t") == ["a", "b", "b"]

    def test_size_bytes(self):
        relation = make_relation()
        assert relation.size_bytes() == 3 * 2 * 4

    def test_sorted_rows_handles_mixed_types(self):
        relation = Relation.from_columns(
            ["x"], [AttributeType.INT], [(3,), (1,), (2,)]
        )
        assert relation.sorted_rows() == [(1,), (2,), (3,)]

    def test_pretty_contains_headers_and_rows(self):
        text = make_relation().pretty()
        assert "t.id" in text
        assert "a" in text

    def test_pretty_truncates(self):
        relation = Relation.from_columns(
            ["x"], [AttributeType.INT], [(i,) for i in range(50)]
        )
        text = relation.pretty(limit=5)
        assert "50 rows total" in text
