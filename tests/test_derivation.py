"""Tests for Algorithm 3.2: auxiliary-view derivation and elimination."""

import pytest

from repro.core.derivation import derive_auxiliary_views, retention_reason
from repro.core.joingraph import ExtendedJoinGraph
from repro.core.view import JoinCondition, make_view
from repro.engine.aggregates import AggregateFunction
from repro.engine.expressions import Column
from repro.engine.operators import AggregateItem, GroupByItem
from repro.workloads.retail import product_sales_max_view, product_sales_view
from repro.workloads.snowflake import (
    build_snowflake_database,
    category_sales_by_product_view,
    category_sales_view,
)

from tests.helpers import assert_same_bag, paper_database


class TestPaperExample:
    """Section 1.1: saledtl, timedtl, productdtl."""

    def test_three_auxiliary_views_no_elimination(self):
        aux = derive_auxiliary_views(product_sales_view(1997), paper_database())
        assert aux.tables == ("sale", "time", "product")
        assert aux.eliminated == {}

    def test_store_is_not_materialized(self):
        aux = derive_auxiliary_views(product_sales_view(1997), paper_database())
        assert not aux.has_view("store")

    def test_saledtl_definition(self):
        aux = derive_auxiliary_views(product_sales_view(1997), paper_database())
        sale = aux.for_table("sale")
        assert sale.name == "saledtl"
        assert sale.is_compressed
        assert sale.count_column == "sale.cnt"
        assert sale.sum_column("price") == "sale.sum_price"
        assert sale.sum_column("timeid") is None
        assert {j.right_table for j in sale.reduced_by} == {"time", "product"}

    def test_timedtl_definition(self):
        aux = derive_auxiliary_views(product_sales_view(1997), paper_database())
        time = aux.for_table("time")
        assert not time.is_compressed
        assert time.count_column is None
        assert len(time.local_conditions) == 1
        assert time.reduced_by == ()

    def test_sql_rendering_matches_paper_shape(self):
        aux = derive_auxiliary_views(product_sales_view(1997), paper_database())
        sql = aux.to_sql()
        assert "CREATE VIEW saledtl AS" in sql
        assert "SUM(sale.price) AS sum_price" in sql
        assert "COUNT(*) AS cnt" in sql
        assert "timeid IN (SELECT id FROM timedtl)" in sql
        assert "productid IN (SELECT id FROM productdtl)" in sql
        assert "GROUP BY timeid, productid" in sql
        assert "time.year = 1997" in sql

    def test_materialized_contents(self):
        database = paper_database()
        aux = derive_auxiliary_views(product_sales_view(1997), database)
        relations = aux.materialize(database)
        # saledtl groups the 1997 sales by (timeid, productid).
        assert sorted(relations["sale"].rows) == [
            (1, 1, 20, 2),   # sales 1,2
            (1, 2, 10, 1),   # sale 3
            (1, 3, 5, 1),    # sale 4
            (2, 1, 10, 1),   # sale 5
            (2, 2, 10, 2),   # sales 6,7
            (3, 1, 5, 1),    # sale 8
        ]
        # timedtl holds only 1997 rows.
        assert sorted(relations["time"].rows) == [(1, 1), (2, 1), (3, 2)]
        assert sorted(relations["product"].rows) == [
            (1, "acme"), (2, "acme"), (3, "bestco"),
        ]

    def test_join_reduction_drops_unjoinable_tuples(self):
        database = paper_database()
        # Add a 1996-only sale: its time row fails the local condition,
        # so join reduction must exclude the sale from saledtl.
        view = product_sales_view(1997)
        aux = derive_auxiliary_views(view, database)
        relations = aux.materialize(database)
        timeids = {row[0] for row in relations["sale"]}
        assert 4 not in timeids  # time 4 is year 1996

    def test_output_schema(self):
        aux = derive_auxiliary_views(product_sales_view(1997), paper_database())
        schema = aux.for_table("sale").output_schema()
        assert schema.qualified_names() == (
            "sale.timeid", "sale.productid", "sale.sum_price", "sale.cnt",
        )


class TestElimination:
    def test_fact_table_eliminated_with_key_group_bys(self):
        database = build_snowflake_database()
        aux = derive_auxiliary_views(category_sales_by_product_view(), database)
        assert "sale" in aux.eliminated
        assert aux.tables == ("product",)

    def test_elimination_blocked_by_non_csmas(self):
        aux = derive_auxiliary_views(product_sales_max_view(), paper_database())
        assert aux.eliminated == {}
        graph = ExtendedJoinGraph(product_sales_max_view(), paper_database())
        reason = retention_reason(
            product_sales_max_view(), graph, "sale"
        )
        assert "non-CSMAS" in reason

    def test_elimination_blocked_by_need_set(self):
        # product_sales groups on time.month (not a key): sale is in
        # time's Need set and must be materialized.
        view = product_sales_view(1997)
        graph = ExtendedJoinGraph(view, paper_database())
        reason = retention_reason(view, graph, "sale")
        assert "Need set" in reason

    def test_elimination_blocked_by_missing_dependence(self):
        database = build_snowflake_database()
        database.table("product").exposed_updates = True
        view = category_sales_by_product_view()
        graph = ExtendedJoinGraph(view, database)
        reason = retention_reason(view, graph, "sale")
        assert "transitively depend" in reason

    def test_dimensions_never_eliminated_in_star(self):
        view = product_sales_view(1997)
        graph = ExtendedJoinGraph(view, paper_database())
        for table in ("time", "product"):
            assert retention_reason(view, graph, table) is not None

    def test_single_table_csmas_view_fully_eliminated(self):
        view = make_view(
            "v",
            ("sale",),
            [
                GroupByItem(Column("productid", "sale")),
                AggregateItem(
                    AggregateFunction.SUM, Column("price", "sale"), alias="s"
                ),
            ],
        )
        aux = derive_auxiliary_views(view, paper_database())
        assert aux.tables == ()
        assert "sale" in aux.eliminated

    def test_for_table_on_eliminated_raises(self):
        database = build_snowflake_database()
        aux = derive_auxiliary_views(category_sales_by_product_view(), database)
        with pytest.raises(KeyError, match="sale"):
            aux.for_table("sale")


class TestSnowflakeDerivation:
    def test_chained_join_reductions(self):
        database = build_snowflake_database()
        aux = derive_auxiliary_views(category_sales_view(), database)
        product = aux.for_table("product")
        assert {j.right_table for j in product.reduced_by} == {"category"}
        sale = aux.for_table("sale")
        assert {j.right_table for j in sale.reduced_by} == {"time", "product"}

    def test_materialize_resolves_dependency_order(self):
        database = build_snowflake_database()
        aux = derive_auxiliary_views(category_sales_view(), database)
        relations = aux.materialize(database)
        assert set(relations) == {"sale", "time", "product", "category"}


class TestAppendOnlyDerivation:
    def test_max_view_fully_self_maintainable(self):
        # Under insert-only streams MAX is CSMAS, so product_sales_max
        # needs no auxiliary data at all.
        aux = derive_auxiliary_views(
            product_sales_max_view(), paper_database(), append_only=True
        )
        assert aux.tables == ()
        assert "sale" in aux.eliminated

    def test_folded_extrema_in_aux_schema(self):
        view = make_view(
            "v",
            ("sale", "time"),
            [
                GroupByItem(Column("month", "time")),
                AggregateItem(
                    AggregateFunction.MIN, Column("price", "sale"), alias="lo"
                ),
                AggregateItem(
                    AggregateFunction.MAX, Column("price", "sale"), alias="hi"
                ),
            ],
            joins=[JoinCondition("sale", "timeid", "time", "id")],
        )
        aux = derive_auxiliary_views(view, paper_database(), append_only=True)
        sale = aux.for_table("sale")
        assert sale.plan.folded_mins == ("price",)
        assert sale.plan.folded_maxs == ("price",)
        assert sale.extremum_column("price", AggregateFunction.MIN) == (
            "sale.min_price"
        )
        names = sale.output_schema().qualified_names()
        assert names == (
            "sale.timeid", "sale.min_price", "sale.max_price", "sale.cnt",
        )

    def test_reconstruction_from_folded_extrema(self):
        database = paper_database()
        view = make_view(
            "v",
            ("sale", "time"),
            [
                GroupByItem(Column("month", "time")),
                AggregateItem(
                    AggregateFunction.MIN, Column("price", "sale"), alias="lo"
                ),
                AggregateItem(
                    AggregateFunction.MAX, Column("price", "sale"), alias="hi"
                ),
            ],
            joins=[JoinCondition("sale", "timeid", "time", "id")],
        )
        from repro.core.rewrite import Reconstructor

        aux = derive_auxiliary_views(view, database, append_only=True)
        reconstructor = Reconstructor(view, aux, database)
        rebuilt = reconstructor.reconstruct(aux.materialize(database))
        assert_same_bag(rebuilt, view.evaluate(database))
