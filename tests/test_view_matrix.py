"""A systematic matrix of view shapes under a fixed transaction battery.

Property tests explore the space randomly; this file pins it down
systematically: every combination of grouping shape x aggregate set x
selection shape over the paper's star schema is maintained through the
same scripted battery of insertions, deletions, and updates, and checked
against recomputation after every transaction.
"""

import pytest

from repro.core.maintenance import SelfMaintainer
from repro.core.view import JoinCondition, ViewDefinition
from repro.engine.aggregates import AggregateFunction
from repro.engine.deltas import Delta, Transaction
from repro.engine.expressions import Column, Comparison, Literal
from repro.engine.operators import AggregateItem, GroupByItem

from tests.helpers import assert_same_bag, paper_database

JOINS = (
    JoinCondition("sale", "timeid", "time", "id"),
    JoinCondition("sale", "productid", "product", "id"),
)

GROUPINGS = {
    "global": (),
    "dim-attr": (GroupByItem(Column("month", "time")),),
    "dim-key": (GroupByItem(Column("id", "product")),),
    "root-attr": (GroupByItem(Column("storeid", "sale")),),
    "root-key": (GroupByItem(Column("id", "sale")),),
    "mixed": (
        GroupByItem(Column("month", "time")),
        GroupByItem(Column("id", "product")),
    ),
}

AGGREGATES = {
    "count": (AggregateItem(AggregateFunction.COUNT, None, alias="a0"),),
    "sum": (
        AggregateItem(AggregateFunction.SUM, Column("price", "sale"), alias="a0"),
        AggregateItem(AggregateFunction.COUNT, None, alias="a1"),
    ),
    "avg": (
        AggregateItem(AggregateFunction.AVG, Column("price", "sale"), alias="a0"),
    ),
    "minmax": (
        AggregateItem(AggregateFunction.MIN, Column("price", "sale"), alias="a0"),
        AggregateItem(AggregateFunction.MAX, Column("price", "sale"), alias="a1"),
    ),
    "distinct": (
        AggregateItem(
            AggregateFunction.COUNT,
            Column("brand", "product"),
            distinct=True,
            alias="a0",
        ),
    ),
    "dim-sum": (
        AggregateItem(AggregateFunction.SUM, Column("month", "time"), alias="a0"),
    ),
    "everything": (
        AggregateItem(AggregateFunction.COUNT, None, alias="a0"),
        AggregateItem(AggregateFunction.SUM, Column("price", "sale"), alias="a1"),
        AggregateItem(AggregateFunction.AVG, Column("price", "sale"), alias="a2"),
        AggregateItem(AggregateFunction.MAX, Column("price", "sale"), alias="a3"),
        AggregateItem(
            AggregateFunction.SUM,
            Column("price", "sale"),
            distinct=True,
            alias="a4",
        ),
    ),
}

SELECTIONS = {
    "none": (),
    "time-filter": (Comparison("=", Column("year", "time"), Literal(1997)),),
    "root-filter": (Comparison(">", Column("price", "sale"), Literal(6)),),
}


def battery():
    """The scripted change battery every view shape must survive."""
    return [
        # fact insert into existing region
        Transaction.of(Delta.insertion("sale", [(101, 1, 1, 1, 33)])),
        # fact insert creating fresh groups / new extremum
        Transaction.of(Delta.insertion("sale", [(102, 3, 3, 1, 500)])),
        # fact delete (removes an extremum candidate)
        Transaction.of(Delta.deletion("sale", [(9, 4, 1, 1, 99)])),
        # dimension insert + referencing fact in one transaction
        Transaction.of(
            Delta.insertion("product", [(9, "omega", "misc")]),
            Delta.insertion("sale", [(103, 2, 9, 1, 4)]),
        ),
        # dimension update changing a preserved attribute
        Transaction.of(
            Delta.update(
                "product",
                old_rows=[(2, "acme", "bakery")],
                new_rows=[(2, "rebrand", "bakery")],
            )
        ),
        # fact update moving a row between groups
        Transaction.of(
            Delta.update(
                "sale",
                old_rows=[(5, 2, 1, 1, 10)],
                new_rows=[(5, 3, 2, 1, 11)],
            )
        ),
        # cascade: delete a product and its sales
        Transaction.of(
            Delta.deletion("product", [(9, "omega", "misc")]),
            Delta.deletion("sale", [(103, 2, 9, 1, 4)]),
        ),
        # group-draining deletes
        Transaction.of(Delta.deletion("sale", [(8, 3, 1, 1, 5)])),
    ]


def build_view(grouping_key: str, aggregate_key: str, selection_key: str):
    return ViewDefinition(
        name=f"m_{grouping_key}_{aggregate_key}_{selection_key}",
        tables=("sale", "time", "product"),
        projection=GROUPINGS[grouping_key] + AGGREGATES[aggregate_key],
        selection=SELECTIONS[selection_key],
        joins=JOINS,
    )


@pytest.mark.parametrize("grouping", sorted(GROUPINGS))
@pytest.mark.parametrize("aggregates", sorted(AGGREGATES))
def test_matrix_no_selection(grouping, aggregates):
    _run(grouping, aggregates, "none")


@pytest.mark.parametrize("grouping", sorted(GROUPINGS))
@pytest.mark.parametrize("selection", sorted(SELECTIONS))
def test_matrix_selections_with_full_aggregates(grouping, selection):
    _run(grouping, "everything", selection)


@pytest.mark.parametrize("aggregates", sorted(AGGREGATES))
def test_matrix_filtered_distinct_combinations(aggregates):
    _run("dim-attr", aggregates, "time-filter")


def _run(grouping: str, aggregates: str, selection: str) -> None:
    database = paper_database()
    view = build_view(grouping, aggregates, selection)
    maintainer = SelfMaintainer(view, database)
    assert_same_bag(
        maintainer.current_view(),
        view.evaluate(database),
        f"{view.name} initial",
    )
    for index, transaction in enumerate(battery()):
        database.apply(transaction)
        maintainer.apply(transaction)
        assert_same_bag(
            maintainer.current_view(),
            view.evaluate(database),
            f"{view.name} step {index}",
        )
    # The auxiliary views must still match their definitions at the end.
    expected = maintainer.aux_set.materialize(database)
    for aux in maintainer.aux_set:
        assert_same_bag(
            maintainer.aux_relation(aux.table),
            expected[aux.table],
            f"{view.name} aux {aux.table}",
        )
