"""Tests for the derivation-explanation reports."""

from repro.core.explain import explain_derivation
from repro.workloads.retail import product_sales_max_view, product_sales_view
from repro.workloads.snowflake import (
    build_snowflake_database,
    category_sales_by_product_view,
)

from tests.helpers import paper_database


class TestPaperViewReport:
    def report(self):
        return explain_derivation(product_sales_view(1997), paper_database())

    def test_structure(self):
        report = self.report()
        assert report.root == "sale"
        assert report.annotations["time"] == "g"
        assert report.need_sets["sale"] == ("time",)
        assert len(report.tables) == 3

    def test_attribute_outcomes(self):
        report = self.report()
        sale = next(t for t in report.tables if t.table == "sale")
        outcomes = {a.attribute: a.outcome for a in sale.attributes}
        assert outcomes["id"] == "reduced away"
        assert outcomes["timeid"].startswith("pinned")
        assert "folded into SUM" in outcomes["price"]
        time = next(t for t in report.tables if t.table == "time")
        time_outcomes = {a.attribute: a.outcome for a in time.attributes}
        assert time_outcomes["year"] == "reduced away"
        assert not time.compressed

    def test_rendered_narrative(self):
        text = self.report().render()
        assert "Extended join graph" in text
        assert "smart duplicate compression applies" in text
        assert "degenerates to a PSJ view" in text
        assert "DISTINCT makes it non-distributive" in text
        assert "join-reduced by time, product" in text

    def test_count_only_attribute_explained(self):
        from repro.core.view import make_view
        from repro.engine.aggregates import AggregateFunction
        from repro.engine.expressions import Column
        from repro.engine.operators import AggregateItem, GroupByItem

        view = make_view(
            "v",
            ("sale",),
            [
                GroupByItem(Column("productid", "sale")),
                AggregateItem(
                    AggregateFunction.COUNT, Column("price", "sale"), alias="c"
                ),
                AggregateItem(
                    AggregateFunction.MAX, Column("storeid", "sale"), alias="m"
                ),
            ],
        )
        report = explain_derivation(view, paper_database())
        sale = report.tables[0]
        outcomes = {a.attribute: a.outcome for a in sale.attributes}
        assert outcomes["price"] == "dropped (COUNT(*) subsumes it)"


class TestEliminationReport:
    def test_omitted_table_narrated(self):
        database = build_snowflake_database()
        report = explain_derivation(category_sales_by_product_view(), database)
        sale = next(t for t in report.tables if t.table == "sale")
        assert not sale.materialized
        assert "Section 3.3" in sale.reason
        text = report.render()
        assert "OMITTED" in text


class TestAppendOnlyReport:
    def test_relaxation_noted(self):
        report = explain_derivation(
            product_sales_max_view(), paper_database(), append_only=True
        )
        notes = " ".join(report.aggregate_notes)
        assert "append-only relaxation" in notes
        # The whole view dissolves: sale omitted.
        assert not report.tables[0].materialized

    def test_folded_extrema_outcome(self):
        from repro.core.view import JoinCondition, make_view
        from repro.engine.aggregates import AggregateFunction
        from repro.engine.expressions import Column
        from repro.engine.operators import AggregateItem, GroupByItem

        view = make_view(
            "v",
            ("sale", "time"),
            [
                GroupByItem(Column("month", "time")),
                AggregateItem(
                    AggregateFunction.MIN, Column("price", "sale"), alias="lo"
                ),
            ],
            joins=[JoinCondition("sale", "timeid", "time", "id")],
        )
        report = explain_derivation(view, paper_database(), append_only=True)
        sale = next(t for t in report.tables if t.table == "sale")
        outcomes = {a.attribute: a.outcome for a in sale.attributes}
        assert outcomes["price"] == "folded into per-group extrema"
