"""Fault injection at the backend-commit boundary.

PR 2's harness sweeps every *maintenance* phase; these tests attack the
one boundary it could not reach — ``Backend.commit()`` after every
maintainer succeeded.  A commit failure must behave exactly like an
apply failure: every view rolls back to the pre-transaction state
(bit-identical fingerprints) on every backend, and a retried
``refresh()`` never double-applies what the failed attempt had
propagated.
"""

from __future__ import annotations

import pytest

from repro.core.maintenance import SelfMaintainer
from repro.engine.deltas import Delta, Transaction
from repro.engine.undolog import RollbackError, UndoLog, rollback_all
from repro.testing.faults import state_fingerprint, verify_index_consistency
from repro.warehouse.deferred import DeferredMaintainer
from repro.warehouse.warehouse import Warehouse
from repro.workloads.retail import product_sales_view, product_sales_max_view

from tests.helpers import assert_same_bag, paper_database


class CommitFault(RuntimeError):
    """The deliberate commit-boundary failure."""


def _fail_commit_once(backend):
    """Replace ``backend.commit`` with a raise-once stub; returns a
    restore function."""
    original = backend.commit
    state = {"fired": False}

    def failing_commit():
        if not state["fired"]:
            state["fired"] = True
            raise CommitFault("injected commit failure")
        return original()

    backend.commit = failing_commit
    return lambda: setattr(backend, "commit", original)


BACKENDS = ["memory", "sqlite", "sharded:2"]


@pytest.mark.parametrize("backend", BACKENDS)
class TestWarehouseCommitFailure:
    def build(self, backend):
        database = paper_database()
        warehouse = Warehouse(
            database, [product_sales_view(1997)], backend=backend
        )
        return database, warehouse

    def test_commit_failure_rolls_back_all_views(self, backend):
        database, warehouse = self.build(backend)
        maintainer = warehouse.maintainer("product_sales")
        good = Transaction.of(Delta.insertion("sale", [(100, 1, 1, 1, 30)]))
        before = state_fingerprint(maintainer)
        restore = _fail_commit_once(warehouse.backend)
        try:
            with pytest.raises(CommitFault):
                warehouse.apply(good)
            # The in-memory views must not reflect a transaction the
            # backend never committed: bit-identical to pre-transaction.
            assert state_fingerprint(maintainer) == before
            verify_index_consistency(maintainer)
        finally:
            restore()
        # The transaction is retryable once the backend recovers.
        database.apply(good)
        warehouse.apply(good)
        assert_same_bag(
            warehouse.summary("product_sales"),
            product_sales_view(1997).evaluate(database),
        )
        warehouse.close()

    def test_commit_failure_with_two_views(self, backend):
        database = paper_database()
        views = [product_sales_view(1997), product_sales_max_view()]
        warehouse = Warehouse(database, views, backend=backend)
        fingerprints = {
            view.name: state_fingerprint(warehouse.maintainer(view.name))
            for view in views
        }
        restore = _fail_commit_once(warehouse.backend)
        try:
            with pytest.raises(CommitFault):
                warehouse.apply(
                    Transaction.of(
                        Delta.insertion("sale", [(100, 1, 1, 1, 30)])
                    )
                )
            for view in views:
                maintainer = warehouse.maintainer(view.name)
                assert state_fingerprint(maintainer) == fingerprints[view.name]
                verify_index_consistency(maintainer)
        finally:
            restore()
        warehouse.close()


@pytest.mark.parametrize("backend", BACKENDS)
class TestDeferredCommitFailure:
    def test_non_coalesced_commit_failure_keeps_buffer(self, backend):
        """A raise from commit() after all applies succeeded used to
        leak the buffer reset path: the applied transactions stayed
        applied while the buffer survived, so a retried refresh()
        double-applied every one of them."""
        database = paper_database()
        view = product_sales_view(1997)
        maintainer = SelfMaintainer(view, database, backend=backend)
        deferred = DeferredMaintainer(maintainer, coalesce_deltas=False)
        good1 = Transaction.of(Delta.insertion("sale", [(100, 1, 1, 1, 30)]))
        good2 = Transaction.of(Delta.insertion("sale", [(101, 1, 2, 1, 40)]))
        before = state_fingerprint(maintainer)
        deferred.apply(good1)
        deferred.apply(good2)
        restore = _fail_commit_once(maintainer.backend)
        try:
            with pytest.raises(CommitFault):
                deferred.refresh()
            # Buffer intact, applied logs rolled back.
            assert deferred.pending == 2
            assert state_fingerprint(maintainer) == before
            verify_index_consistency(maintainer)
        finally:
            restore()
        # Retry must apply each buffered transaction exactly once.
        database.apply(good1)
        database.apply(good2)
        stats = deferred.refresh()
        assert stats.transactions == 2
        assert_same_bag(deferred.current_view(), view.evaluate(database))
        deferred.close()

    def test_coalesced_commit_failure_keeps_buffer(self, backend):
        database = paper_database()
        view = product_sales_view(1997)
        maintainer = SelfMaintainer(view, database, backend=backend)
        deferred = DeferredMaintainer(maintainer, coalesce_deltas=True)
        good = Transaction.of(Delta.insertion("sale", [(100, 1, 1, 1, 30)]))
        before = state_fingerprint(maintainer)
        deferred.apply(good)
        restore = _fail_commit_once(maintainer.backend)
        try:
            with pytest.raises(CommitFault):
                deferred.refresh()
            assert deferred.pending == 1
            assert state_fingerprint(maintainer) == before
        finally:
            restore()
        database.apply(good)
        deferred.refresh()
        assert_same_bag(deferred.current_view(), view.evaluate(database))
        deferred.close()


class TestAggregateRollback:
    def test_rollback_all_continues_past_failures(self):
        order: list[str] = []
        good1, bad, good2 = UndoLog(), UndoLog(), UndoLog()
        good1.record(lambda: order.append("good1"), rows=1)
        bad.record(lambda: (_ for _ in ()).throw(RuntimeError("broken")))
        good2.record(lambda: order.append("good2"), rows=2)
        with pytest.raises(RollbackError) as excinfo:
            rollback_all([("a", good2), ("b", bad), ("c", good1)])
        # The broken inverse did not stop the others.
        assert order == ["good2", "good1"]
        assert len(excinfo.value.failures) == 1
        assert "broken" in str(excinfo.value)

    def test_rollback_all_counts_perf(self):
        class Perf:
            def __init__(self):
                self.counts = {}

            def count(self, name, amount=1):
                self.counts[name] = self.counts.get(name, 0) + amount

        perf = Perf()
        log = UndoLog()
        log.record(lambda: None, rows=3)
        rollback_all([(perf, log)], perf_for=lambda p: p)
        assert perf.counts == {"rollbacks": 1, "rows_undone": 3}

    def test_warehouse_broken_inverse_still_unwinds_siblings(self, monkeypatch):
        """If one view's rollback raises during a cross-view unwind, the
        other views must still be restored and the failures aggregated."""
        database = paper_database()
        views = [product_sales_view(1997), product_sales_max_view()]
        warehouse = Warehouse(database, views)
        first = warehouse.maintainer("product_sales")
        before = state_fingerprint(first)
        original = UndoLog.rollback
        state = {"fired": False}

        def flaky_rollback(self):
            # The coordinator unwinds in reverse registration order, so
            # the first log it reaches belongs to the *second* view.
            if not state["fired"]:
                state["fired"] = True
                raise RuntimeError("broken inverse")
            return original(self)

        monkeypatch.setattr(UndoLog, "rollback", flaky_rollback)
        restore = _fail_commit_once(warehouse.backend)
        try:
            with pytest.raises(RollbackError) as excinfo:
                warehouse.apply(
                    Transaction.of(
                        Delta.insertion("sale", [(100, 1, 1, 1, 30)])
                    )
                )
        finally:
            restore()
        assert len(excinfo.value.failures) == 1
        # The first view's log still ran: its state is restored.
        assert state_fingerprint(first) == before


class TestCloseAndContextManagers:
    def test_warehouse_context_manager_closes_backend(self, monkeypatch):
        database = paper_database()
        closed = []
        with Warehouse(database, [product_sales_view(1997)]) as warehouse:
            monkeypatch.setattr(
                warehouse.backend, "close", lambda: closed.append(True)
            )
        assert closed == [True]

    def test_deferred_context_manager_closes_backend(self, monkeypatch):
        database = paper_database()
        maintainer = SelfMaintainer(product_sales_view(1997), database)
        closed = []
        with DeferredMaintainer(maintainer) as deferred:
            monkeypatch.setattr(
                maintainer.backend, "close", lambda: closed.append(True)
            )
            deferred.apply(
                Transaction.of(Delta.insertion("sale", [(100, 1, 1, 1, 30)]))
            )
        # close() releases resources but does not flush the buffer.
        assert closed == [True]
        assert deferred.pending == 1

    def test_sqlite_close_releases_handle(self):
        database = paper_database()
        with Warehouse(
            database, [product_sales_view(1997)], backend="sqlite"
        ) as warehouse:
            warehouse.apply(
                Transaction.of(Delta.insertion("sale", [(100, 1, 1, 1, 30)]))
            )
        import sqlite3

        with pytest.raises(sqlite3.ProgrammingError):
            warehouse.backend._conn.execute("SELECT 1")
