"""The serving layer: snapshot stores, the apply queue, the HTTP service.

Most tests drive :class:`WarehouseService` methods directly (no
sockets); one socket test and one concurrent load test cover the real
``ThreadingHTTPServer`` path end to end, including the shadow-replay
consistency proof from :mod:`repro.serving.loadgen`.
"""

from __future__ import annotations

import json
import random
import urllib.error
import urllib.request

import pytest

from repro.core.maintenance import SelfMaintainer
from repro.engine.deltas import Delta, Transaction
from repro.serving import (
    ApplyQueue,
    BackpressureError,
    SnapshotError,
    VersionGoneError,
    VersionedViewStore,
    WarehouseServer,
    WarehouseService,
)
from repro.serving.loadgen import (
    canonical_rows,
    check_against_shadow,
    run_load,
)
from repro.serving.server import ServiceError
from repro.testing.faults import state_fingerprint
from repro.warehouse.warehouse import Warehouse
from repro.workloads.retail import (
    RetailConfig,
    build_retail_database,
    product_sales_view,
)

from tests.helpers import paper_database


def _insert(sale_id, time=1, product=1, store=1, price=10) -> Transaction:
    return Transaction.of(
        Delta.insertion("sale", [(sale_id, time, product, store, price)])
    )


def _delete(row) -> Transaction:
    return Transaction.of(Delta.deletion("sale", [row]))


@pytest.fixture
def maintainer():
    return SelfMaintainer(product_sales_view(1997), paper_database())


def _store_from(maintainer, retain: int = 64) -> VersionedViewStore:
    return VersionedViewStore(
        maintainer.view.name,
        maintainer.reconstructor.output_schema,
        maintainer.group_rows(),
        having=maintainer.view.having,
        retain=retain,
    )


class TestVersionedViewStore:
    def test_initial_snapshot_matches_maintainer(self, maintainer):
        store = _store_from(maintainer)
        snapshot = store.snapshot()
        assert snapshot.version == 0
        assert snapshot.txn_watermark == 0
        assert canonical_rows(snapshot.rows()) == canonical_rows(
            maintainer.current_view().rows
        )

    def test_publish_and_pinned_reads(self, maintainer):
        store = _store_from(maintainer)
        v0_rows = canonical_rows(store.snapshot().rows())
        key = next(iter(maintainer.group_rows()))
        replaced = maintainer.summary_row(key)
        changed = tuple(
            value + 1 if isinstance(value, (int, float)) else value
            for value in replaced
        )
        store.publish(1, 1, {key: changed})
        # The latest snapshot sees the patch; version 0 stays pinned.
        assert canonical_rows(store.snapshot().rows()) != v0_rows
        assert canonical_rows(store.snapshot(0).rows()) == v0_rows
        assert store.snapshot(1).txn_watermark == 1
        assert store.latest_version == 1

    def test_none_change_deletes_group(self, maintainer):
        store = _store_from(maintainer)
        key = next(iter(maintainer.group_rows()))
        before = len(store.snapshot())
        store.publish(1, 1, {key: None})
        assert len(store.snapshot()) == before - 1
        assert len(store.snapshot(0)) == before

    def test_versions_must_strictly_increase(self, maintainer):
        store = _store_from(maintainer)
        store.publish(1, 1, {})
        with pytest.raises(SnapshotError):
            store.publish(1, 2, {})
        with pytest.raises(SnapshotError):
            store.publish(0, 3, {})

    def test_unpublished_version_rejected(self, maintainer):
        store = _store_from(maintainer)
        with pytest.raises(SnapshotError):
            store.snapshot(1)

    def test_retention_compaction(self, maintainer):
        store = _store_from(maintainer, retain=2)
        key = next(iter(maintainer.group_rows()))
        row = maintainer.summary_row(key)
        expected = {}
        for version in range(1, 6):
            patched = (f"v{version}",) + tuple(row[1:])
            store.publish(version, version, {key: patched})
            expected[version] = patched
        # Old versions fell off the retention window...
        with pytest.raises(VersionGoneError):
            store.snapshot(1)
        # ...but every retained version reconstructs exactly.
        published = store._published
        for version in range(published.base_version, 6):
            snap = store.snapshot(version)
            rows = dict(snap._rows_by_key)
            assert rows[key] == expected[version]
            assert snap.txn_watermark == version
        assert len(published.patches) <= 2

    def test_compaction_does_not_disturb_held_snapshots(self, maintainer):
        store = _store_from(maintainer, retain=1)
        held = store.snapshot()
        rows_before = canonical_rows(held.rows())
        key = next(iter(maintainer.group_rows()))
        for version in range(1, 5):
            store.publish(version, version, {key: None})
        # The held snapshot object still serves its original rows even
        # though its version left the window.
        assert canonical_rows(held.rows()) == rows_before

    def test_retain_must_be_positive(self, maintainer):
        with pytest.raises(ValueError):
            _store_from(maintainer, retain=0)


class TestApplyQueue:
    def _build(self, **kwargs):
        database = paper_database()
        warehouse = Warehouse(database, [product_sales_view(1997)])
        maintainer = warehouse.maintainer("product_sales")
        store = _store_from(maintainer)
        queue = ApplyQueue(warehouse, {"product_sales": store}, **kwargs)
        return database, warehouse, maintainer, store, queue

    def test_submit_applies_and_publishes(self):
        database, warehouse, maintainer, store, queue = self._build()
        queue.start()
        try:
            ticket = queue.submit(_insert(100, price=30)).wait(10)
            assert (ticket.version, ticket.watermark) == (1, 1)
            assert canonical_rows(store.snapshot().rows()) == canonical_rows(
                maintainer.current_view().rows
            )
            assert queue.applied == 1
        finally:
            queue.stop()
            warehouse.close()

    def test_microbatch_coalesces_churn(self):
        database, warehouse, maintainer, store, queue = self._build(
            max_batch=8
        )
        before = canonical_rows(maintainer.current_view().rows)
        row = (100, 1, 1, 1, 30)
        # Submit before starting the worker so both land in one batch:
        # the insert/delete pair cancels and nothing is propagated.
        t1 = queue.submit(_insert(*row[:1], *row[1:]))
        t2 = queue.submit(_delete(row))
        queue.start()
        try:
            t1.wait(10)
            t2.wait(10)
            assert t1.version == t2.version == 1
            assert canonical_rows(maintainer.current_view().rows) == before
            registry = queue.registry
            assert registry.counter(
                "repro_serving_coalesced_rows_total"
            ).value == 2
            assert registry.counter(
                "repro_serving_txns_applied_total"
            ).value == 2
            assert registry.counter("repro_serving_batches_total").value == 1
        finally:
            queue.stop()
            warehouse.close()

    def test_backpressure_when_full(self):
        database, warehouse, maintainer, store, queue = self._build(
            max_pending=1
        )
        queue.submit(_insert(100))
        with pytest.raises(BackpressureError):
            queue.submit(_insert(101))
        warehouse.close()

    def test_failed_batch_publishes_nothing(self):
        database, warehouse, maintainer, store, queue = self._build()
        fingerprint = state_fingerprint(maintainer)
        original = warehouse.backend.commit
        warehouse.backend.commit = lambda: (_ for _ in ()).throw(
            RuntimeError("injected commit failure")
        )
        queue.start()
        try:
            ticket = queue.submit(_insert(100))
            with pytest.raises(RuntimeError, match="injected"):
                ticket.wait(10)
            assert queue.version == 0
            assert store.latest_version == 0
            assert state_fingerprint(maintainer) == fingerprint
            assert "injected" in queue.last_error
            # The queue survives: the next transaction goes through.
            warehouse.backend.commit = original
            database.apply(_insert(101))
            good = queue.submit(_insert(101)).wait(10)
            assert good.version == 1
        finally:
            queue.stop()
            warehouse.close()

    def test_flush_is_a_barrier(self):
        database, warehouse, maintainer, store, queue = self._build()
        queue.start()
        try:
            ticket = queue.flush()
            assert (ticket.version, ticket.watermark) == (0, 0)
            queue.submit(_insert(100))
            queue.submit(_insert(101, time=2))
            after = queue.flush()
            assert after.watermark == 2
        finally:
            queue.stop()
            warehouse.close()


def _service(**options) -> tuple[Warehouse, WarehouseService]:
    database = paper_database()
    warehouse = Warehouse(database, [product_sales_view(1997)])
    return warehouse, WarehouseService(warehouse, **options)


def _apply_body(transaction) -> bytes:
    return json.dumps(
        {
            "deltas": [
                {
                    "table": delta.table,
                    "inserted": [list(r) for r in delta.inserted],
                    "deleted": [list(r) for r in delta.deleted],
                }
                for delta in transaction
            ]
        }
    ).encode()


class TestWarehouseService:
    def test_query_round_trip(self):
        warehouse, service = _service()
        service.start()
        try:
            status, ctype, payload = service.query("product_sales")
            assert status == 200
            body = json.loads(payload)
            assert body["version"] == 0
            assert body["columns"][0] == "month"
            baseline = body["rows"]

            status, __, payload = service.apply(
                _apply_body(_insert(100, price=30)), mode="sync"
            )
            assert status == 200
            applied = json.loads(payload)
            assert applied["version"] == 1
            assert applied["txn_watermark"] == 1

            __, __, payload = service.query("product_sales")
            assert json.loads(payload)["rows"] != baseline
            # The pre-transaction version stays readable.
            __, __, payload = service.query("product_sales", version=0)
            assert json.loads(payload)["rows"] == baseline
        finally:
            service.stop()
            warehouse.close()

    def test_async_apply_then_refresh(self):
        warehouse, service = _service()
        service.start()
        try:
            status, __, payload = service.apply(
                _apply_body(_insert(100)), mode="async"
            )
            assert status == 202
            assert json.loads(payload)["accepted"] is True
            status, __, payload = service.refresh()
            assert status == 200
            assert json.loads(payload)["txn_watermark"] == 1
        finally:
            service.stop()
            warehouse.close()

    def test_error_statuses(self):
        warehouse, service = _service()
        service.start()
        try:
            with pytest.raises(ServiceError) as excinfo:
                service.query("nope")
            assert excinfo.value.status == 404
            with pytest.raises(ServiceError) as excinfo:
                service.query("product_sales", version=99)
            assert excinfo.value.status == 404
            with pytest.raises(ServiceError) as excinfo:
                service.apply(b"not json")
            assert excinfo.value.status == 400
            with pytest.raises(ServiceError) as excinfo:
                service.apply(b"{}")
            assert excinfo.value.status == 400
            with pytest.raises(ServiceError) as excinfo:
                service.apply(_apply_body(_insert(100)), mode="maybe")
            assert excinfo.value.status == 400
            with pytest.raises(ServiceError) as excinfo:
                service.explain("nope")
            assert excinfo.value.status == 404
        finally:
            service.stop()
            warehouse.close()

    def test_rejected_transaction_maps_to_422(self):
        warehouse, service = _service()
        original = warehouse.backend.commit
        warehouse.backend.commit = lambda: (_ for _ in ()).throw(
            RuntimeError("commit refused")
        )
        service.start()
        try:
            with pytest.raises(ServiceError) as excinfo:
                service.apply(_apply_body(_insert(100)), mode="sync")
            assert excinfo.value.status == 422
            assert "commit refused" in str(excinfo.value)
        finally:
            warehouse.backend.commit = original
            service.stop()
            warehouse.close()

    def test_backpressure_maps_to_503(self):
        warehouse, service = _service(max_pending=1)
        # The queue is deliberately not started: the first submission
        # fills it, the second must be bounced.
        service.apply(_apply_body(_insert(100)), mode="async")
        with pytest.raises(ServiceError) as excinfo:
            service.apply(_apply_body(_insert(101)), mode="async")
        assert excinfo.value.status == 503
        warehouse.close()

    def test_version_gone_maps_to_410(self):
        warehouse, service = _service(retain_versions=1)
        service.start()
        try:
            for sale_id in range(100, 104):
                service.apply(_apply_body(_insert(sale_id)), mode="sync")
            with pytest.raises(ServiceError) as excinfo:
                service.query("product_sales", version=1)
            assert excinfo.value.status == 410
        finally:
            service.stop()
            warehouse.close()

    def test_metrics_and_healthz(self):
        warehouse, service = _service()
        service.start()
        try:
            service.apply(_apply_body(_insert(100)), mode="sync")
            service.query("product_sales")
            __, __, payload = service.healthz()
            health = json.loads(payload)
            assert health["status"] == "ok"
            assert health["views"]["product_sales"]["version"] == 1
            assert health["applied"] == 1
            status, ctype, payload = service.metrics()
            text = payload.decode()
            assert status == 200 and "text/plain" in ctype
            for name in (
                "repro_serving_queue_depth",
                "repro_serving_lag_transactions",
                "repro_serving_txns_applied_total",
                "repro_serving_read_latency_ms_bucket",
            ):
                assert name in text, name
        finally:
            service.stop()
            warehouse.close()


class TestWarehouseServerSocket:
    def test_http_round_trip(self):
        database = paper_database()
        warehouse = Warehouse(database, [product_sales_view(1997)])
        with WarehouseServer(warehouse) as server:
            with urllib.request.urlopen(server.url + "/healthz") as response:
                assert json.loads(response.read())["status"] == "ok"
            request = urllib.request.Request(
                server.url + "/apply?mode=sync",
                data=_apply_body(_insert(100, price=30)),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request) as response:
                assert json.loads(response.read())["version"] == 1
            with urllib.request.urlopen(
                server.url + "/query?view=product_sales"
            ) as response:
                body = json.loads(response.read())
            assert body["version"] == 1
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(server.url + "/query?view=nope")
            assert excinfo.value.code == 404
        warehouse.close()


def _retail_stream(database, transactions: int, seed: int) -> list[Transaction]:
    """Deterministic, integrity-valid sale inserts/deletes for load runs."""
    rng = random.Random(seed)
    live = [tuple(row) for row in database.relation("sale")]
    next_id = max(row[0] for row in live) + 1
    days = len(database.relation("time"))
    products = len(database.relation("product"))
    stores = len(database.relation("store"))
    stream = []
    for index in range(transactions):
        if index % 4 == 3 and live:
            victim = live.pop(rng.randrange(len(live)))
            stream.append(_delete(victim))
            continue
        row = (
            next_id,
            rng.randint(1, days),
            rng.randint(1, products),
            rng.randint(1, stores),
            rng.randint(5, 60),
        )
        next_id += 1
        live.append(row)
        stream.append(Transaction.of(Delta.insertion("sale", [row])))
    return stream


class TestConcurrentReaders:
    def test_snapshots_stay_consistent_under_write_load(self):
        config = RetailConfig(
            days=6,
            stores=2,
            products=10,
            products_sold_per_day=4,
            transactions_per_product=2,
            start_year=1997,
            seed=11,
        )
        database = build_retail_database(config)
        warehouse = Warehouse(database, [product_sales_view(1997)])
        transactions = _retail_stream(database, transactions=24, seed=3)
        with WarehouseServer(warehouse, max_batch=4) as server:
            report, snapshots = run_load(
                server.url,
                "product_sales",
                transactions,
                readers=3,
                sync_every=6,
            )
        warehouse.close()
        # The shadow replays the same stream over an identical database.
        shadow = SelfMaintainer(
            product_sales_view(1997), build_retail_database(config)
        )
        check_against_shadow(report, snapshots, shadow, transactions)
        assert report.writes_applied == len(transactions)
        assert report.read_errors == 0
        assert report.torn_reads == 0
        assert report.monotonicity_violations == 0
        assert report.replay_mismatches == 0
        assert report.versions_checked >= 1
        assert report.consistent_fraction == 1.0
        # The final watermark covers the whole stream.
        assert max(key[1] for key in snapshots) == len(transactions)


class TestServeCLI:
    def test_serve_requires_a_workload(self, capsys):
        from repro.cli import main

        assert main(["serve"]) == 1
        assert "--retail" in capsys.readouterr().err
