"""Tests for the Section 1.1 analytic storage model."""

from repro.storage.model import (
    GIB,
    MIB,
    auxiliary_view_upper_bound,
    format_bytes,
    paper_auxiliary_view_estimate,
    paper_fact_table_estimate,
    relation_estimate,
)

from tests.helpers import paper_database


class TestPaperNumbers:
    def test_fact_table_tuple_count(self):
        estimate = paper_fact_table_estimate()
        # 730 x 300 x 3000 x 20 = 13,140,000,000 (Section 1.1).
        assert estimate.tuples == 13_140_000_000

    def test_fact_table_bytes(self):
        estimate = paper_fact_table_estimate()
        assert estimate.total_bytes == 13_140_000_000 * 5 * 4
        # The paper reports ~245 GB.
        assert round(estimate.total_bytes / GIB) == 245

    def test_auxiliary_view_tuple_count(self):
        estimate = paper_auxiliary_view_estimate()
        # 365 x 30,000 = 10,950,000 (Section 1.1).
        assert estimate.tuples == 10_950_000

    def test_auxiliary_view_bytes(self):
        estimate = paper_auxiliary_view_estimate()
        assert estimate.total_bytes == 10_950_000 * 4 * 4
        # The paper reports ~167 MB.
        assert round(estimate.total_bytes / MIB) == 167

    def test_reduction_factor(self):
        fact = paper_fact_table_estimate()
        aux = paper_auxiliary_view_estimate()
        # 245 GB / 167 MB = three orders of magnitude.
        assert aux.ratio_to(fact) > 1_000


class TestEstimators:
    def test_relation_estimate_measures_live_relation(self):
        database = paper_database()
        estimate = relation_estimate("sale", database.relation("sale"))
        assert estimate.tuples == 9
        assert estimate.fields == 5
        assert estimate.total_bytes == database.relation("sale").size_bytes()

    def test_upper_bound_is_product_of_cardinalities(self):
        bound = auxiliary_view_upper_bound(
            {"timeid": 365, "productid": 30_000}, fields=4
        )
        assert bound.tuples == 365 * 30_000

    def test_str_rendering(self):
        text = str(paper_fact_table_estimate())
        assert "13,140,000,000" in text
        assert "GB" in text


class TestFormatBytes:
    def test_units(self):
        assert format_bytes(500) == "500 B"
        assert format_bytes(2048) == "2.0 KB"
        assert format_bytes(3 * MIB) == "3.0 MB"
        assert format_bytes(2 * GIB) == "2.0 GB"
