"""Property tests for maintained row indexes and indexed operators.

The invariant: a :class:`RowIndex` maintained incrementally through any
interleaving of inserts and deletes (duplicates included) is
indistinguishable from one rebuilt from scratch, and every operator
answers identically with and without an index.
"""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.operators import OperatorError, antijoin, equijoin, semijoin
from repro.engine.relation import Relation, RelationError
from repro.engine.rowindex import (
    RowIndex,
    RowIndexError,
    make_key_extractor,
    make_tuple_extractor,
)
from repro.engine.types import AttributeType

from tests.helpers import assert_same_bag

SETTINGS = dict(max_examples=60, deadline=None)

# Small domains force duplicate rows and key collisions.
row_strategy = st.tuples(
    st.integers(0, 3), st.integers(0, 3), st.integers(0, 5)
)
rows_strategy = st.lists(row_strategy, max_size=25)
# An interleaving: True = insert a fresh row, False = delete a live one.
ops_strategy = st.lists(
    st.tuples(st.booleans(), row_strategy, st.integers(0, 100)), max_size=30
)


def make_relation(rows, qualifier="r"):
    return Relation.from_columns(
        ("a", "b", "c"),
        (AttributeType.INT, AttributeType.INT, AttributeType.INT),
        rows,
        qualifier=qualifier,
    )


def churned_relation(initial, ops, qualifier="r"):
    """Apply a random insert/delete interleaving, keeping deletes valid."""
    relation = make_relation(initial, qualifier)
    for is_insert, row, pick in ops:
        if is_insert or not relation.rows:
            relation.insert(row)
        else:
            relation.delete(relation.rows[pick % len(relation.rows)])
    return relation


@given(initial=rows_strategy, ops=ops_strategy)
@settings(**SETTINGS)
def test_maintained_index_equals_rebuild(initial, ops):
    relation = make_relation(initial)
    maintained = relation.index_on("a", "c")  # registered before the churn
    for is_insert, row, pick in ops:
        if is_insert or not relation.rows:
            relation.insert(row)
        else:
            relation.delete(relation.rows[pick % len(relation.rows)])
    rebuilt = RowIndex(maintained.positions, relation.rows)
    assert maintained.keys() == rebuilt.keys()
    for key in rebuilt.keys():
        assert Counter(maintained.rows_for(key)) == Counter(rebuilt.rows_for(key))
    assert len(maintained) == len(relation)


@given(
    left_rows=rows_strategy, right_initial=rows_strategy, ops=ops_strategy
)
@settings(**SETTINGS)
def test_indexed_joins_match_unindexed(left_rows, right_initial, ops):
    left = make_relation(left_rows, "l")
    right = churned_relation(right_initial, ops, "r")
    index = right.index_on("b")
    pairs = [("l.b", "r.b")]
    for operator in (equijoin, semijoin, antijoin):
        assert_same_bag(
            operator(left, right, pairs, right_index=index),
            operator(left, right, pairs),
            f"{operator.__name__} with maintained index",
        )


@given(
    left_rows=rows_strategy, right_initial=rows_strategy, ops=ops_strategy
)
@settings(**SETTINGS)
def test_indexed_multicolumn_joins_match_unindexed(
    left_rows, right_initial, ops
):
    left = make_relation(left_rows, "l")
    right = churned_relation(right_initial, ops, "r")
    index = right.index_on("a", "c")
    pairs = [("l.a", "r.a"), ("l.c", "r.c")]
    for operator in (equijoin, semijoin, antijoin):
        assert_same_bag(
            operator(left, right, pairs, right_index=index),
            operator(left, right, pairs),
            f"{operator.__name__} with maintained multi-column index",
        )


def test_mismatched_index_rejected():
    left = make_relation([(1, 2, 3)], "l")
    right = make_relation([(1, 2, 3)], "r")
    index = right.index_on("a")  # join is on b
    with pytest.raises(OperatorError):
        equijoin(left, right, [("l.b", "r.b")], right_index=index)


def test_remove_absent_row_raises():
    index = RowIndex((0,), [(1, "x")])
    with pytest.raises(RowIndexError):
        index.remove((2, "y"))
    index.remove((1, "x"))
    assert not index.keys()
    assert len(index) == 0


def test_duplicate_rows_removed_one_at_a_time():
    row = (7, "dup")
    index = RowIndex((0,), [row, row, row])
    assert list(index.rows_for(7)) == [row, row, row]
    index.remove(row)
    assert list(index.rows_for(7)) == [row, row]
    index.remove_all([row, row])
    assert 7 not in index
    assert index.keys() == set()  # bucket fully drained, key gone


def test_relation_delete_keeps_indexes_exact():
    relation = make_relation([(1, 1, 1), (1, 1, 1), (2, 2, 2)])
    index = relation.index_on("a")
    relation.delete((1, 1, 1))
    assert Counter(index.rows_for(1)) == Counter([(1, 1, 1)])
    relation.delete_where(lambda row: row[0] == 1)
    assert 1 not in index
    with pytest.raises(RelationError):
        relation.delete((9, 9, 9))
    assert index.keys() == {2}


def test_extractor_conventions():
    # Single-column key extractors yield bare scalars; tuple extractors
    # always yield tuples — the convention indexes and operators share.
    assert make_key_extractor((1,))(("a", "b")) == "b"
    assert make_key_extractor((0, 1))(("a", "b")) == ("a", "b")
    assert make_tuple_extractor((1,))(("a", "b")) == ("b",)
    assert make_tuple_extractor(())(("a", "b")) == ()
