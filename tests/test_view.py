"""Unit tests for GPSJ view definitions and their evaluation."""

import pytest

from repro.core.view import JoinCondition, ViewDefinition, ViewError, make_view
from repro.engine.aggregates import AggregateFunction
from repro.engine.expressions import Column, Comparison, Literal
from repro.engine.operators import AggregateItem, GroupByItem
from repro.workloads.retail import product_sales_view

from tests.helpers import assert_same_bag, paper_database


def count_view(tables=("sale",), **kwargs):
    return make_view(
        "v",
        tables,
        [AggregateItem(AggregateFunction.COUNT, None, alias="c")],
        **kwargs,
    )


class TestValidation:
    def test_requires_tables(self):
        with pytest.raises(ViewError, match="no tables"):
            count_view(tables=())

    def test_rejects_self_joins(self):
        with pytest.raises(ViewError, match="twice"):
            count_view(tables=("sale", "sale"))

    def test_requires_projection(self):
        with pytest.raises(ViewError, match="projects nothing"):
            make_view("v", ("sale",), [])

    def test_rejects_unqualified_columns(self):
        with pytest.raises(ViewError, match="qualified"):
            make_view("v", ("sale",), [GroupByItem(Column("price"))])

    def test_rejects_unknown_table_in_projection(self):
        with pytest.raises(ViewError, match="unknown table"):
            make_view("v", ("sale",), [GroupByItem(Column("month", "time"))])

    def test_rejects_cross_table_selection(self):
        condition = Comparison(
            "=", Column("price", "sale"), Column("month", "time")
        )
        with pytest.raises(ViewError, match="join conditions belong"):
            make_view(
                "v",
                ("sale", "time"),
                [AggregateItem(AggregateFunction.COUNT, None, alias="c")],
                selection=[condition],
            )

    def test_rejects_join_with_unknown_table(self):
        with pytest.raises(ViewError, match="unknown table"):
            count_view(joins=[JoinCondition("sale", "timeid", "ghost", "id")])

    def test_rejects_duplicate_output_names(self):
        with pytest.raises(ViewError, match="duplicate output"):
            make_view(
                "v",
                ("sale",),
                [
                    AggregateItem(AggregateFunction.COUNT, None, alias="c"),
                    AggregateItem(
                        AggregateFunction.SUM, Column("price", "sale"), alias="c"
                    ),
                ],
            )


class TestAccessors:
    def test_structure_of_paper_view(self):
        view = product_sales_view(1997)
        assert [i.output_name for i in view.group_by_items] == ["month"]
        assert len(view.aggregate_items) == 3
        assert view.group_by_attributes("time") == ("month",)
        assert view.group_by_attributes("sale") == ()
        assert view.preserved_attributes("sale") == ("price",)
        assert view.preserved_attributes("product") == ("brand",)
        assert view.join_attributes("sale") == ("timeid", "productid")
        assert view.join_attributes("time") == ("id",)
        assert len(view.local_conditions("time")) == 1
        assert view.local_conditions("sale") == ()
        assert len(view.joins_from("sale")) == 2
        assert len(view.joins_to("time")) == 1

    def test_aggregated_attributes_excludes_count_star(self):
        view = product_sales_view(1997)
        names = [i.column.name for i in view.aggregated_attributes("sale")]
        assert names == ["price"]

    def test_with_name(self):
        view = product_sales_view().with_name("renamed")
        assert view.name == "renamed"


class TestEvaluation:
    def test_paper_view_small_instance(self):
        database = paper_database()
        result = product_sales_view(1997).evaluate(database)
        # month 1: sales 1,2,3,4,5,6,7 -> price sum 55, count 7,
        #          brands {acme (p1,p2), bestco (p3)} -> 2
        # month 2: sale 8 -> sum 5, count 1, brands {acme} -> 1
        assert sorted(result.rows) == [(1, 55, 7, 2), (2, 5, 1, 1)]

    def test_local_conditions_filter(self):
        database = paper_database()
        view = product_sales_view(1996)
        result = view.evaluate(database)
        assert sorted(result.rows) == [(1, 99, 1, 1)]

    def test_single_table_view(self):
        database = paper_database()
        view = make_view(
            "v",
            ("sale",),
            [
                GroupByItem(Column("productid", "sale")),
                AggregateItem(
                    AggregateFunction.SUM, Column("price", "sale"), alias="s"
                ),
            ],
        )
        result = view.evaluate(database)
        assert sorted(result.rows) == [(1, 134), (2, 20), (3, 5)]

    def test_empty_result_when_nothing_matches(self):
        database = paper_database()
        view = make_view(
            "v",
            ("time",),
            [AggregateItem(AggregateFunction.COUNT, None, alias="c")],
            selection=[Comparison("=", Column("year", "time"), Literal(2099))],
        )
        assert len(view.evaluate(database)) == 0

    def test_having_filters_groups(self):
        database = paper_database()
        view = make_view(
            "v",
            ("sale",),
            [
                GroupByItem(Column("productid", "sale")),
                AggregateItem(AggregateFunction.COUNT, None, alias="c"),
            ],
            having=Comparison(">", Column("c"), Literal(2)),
        )
        result = view.evaluate(database)
        # product 1 sells 5 times, product 2 three times, product 3 once.
        assert sorted(result.rows) == [(1, 5), (2, 3)]

    def test_join_order_independence(self):
        database = paper_database()
        view = product_sales_view(1997)
        reordered = ViewDefinition(
            view.name,
            ("product", "sale", "time"),
            view.projection,
            view.selection,
            view.joins,
        )
        assert_same_bag(view.evaluate(database), reordered.evaluate(database))


class TestRendering:
    def test_to_sql_shape(self):
        sql = product_sales_view(1997).to_sql()
        assert sql.startswith("CREATE VIEW product_sales AS")
        assert "COUNT(DISTINCT product.brand) AS DifferentBrands" in sql
        assert "GROUP BY time.month" in sql
        assert "sale.timeid = time.id" in sql

    def test_join_condition_rendering(self):
        join = JoinCondition("sale", "timeid", "time", "id")
        assert join.to_sql() == "sale.timeid = time.id"
        assert join.left_column == Column("timeid", "sale")
        assert join.right_column == Column("id", "time")
