"""Tests for reconstructing V from its auxiliary views (Section 3.2)."""

import pytest

from repro.core.derivation import derive_auxiliary_views
from repro.core.rewrite import (
    AggregateCategory,
    ReconstructionError,
    Reconstructor,
    categorize,
)
from repro.core.view import JoinCondition, make_view
from repro.engine.aggregates import AggregateFunction
from repro.engine.expressions import Column, Comparison, Literal
from repro.engine.operators import AggregateItem, GroupByItem
from repro.workloads.retail import product_sales_max_view, product_sales_view

from tests.helpers import assert_same_bag, paper_database


def build(view, database=None):
    database = database or paper_database()
    aux = derive_auxiliary_views(view, database)
    return Reconstructor(view, aux, database), aux, database


class TestCategorization:
    def test_categories(self):
        col = Column("a", "t")
        assert categorize(AggregateItem(AggregateFunction.COUNT, None)) is (
            AggregateCategory.COUNT
        )
        assert categorize(AggregateItem(AggregateFunction.SUM, col)) is (
            AggregateCategory.SUM
        )
        assert categorize(AggregateItem(AggregateFunction.AVG, col)) is (
            AggregateCategory.AVG
        )
        assert categorize(AggregateItem(AggregateFunction.MIN, col)) is (
            AggregateCategory.EXTREMUM
        )
        assert categorize(
            AggregateItem(AggregateFunction.MAX, col, distinct=True)
        ) is AggregateCategory.EXTREMUM
        assert categorize(
            AggregateItem(AggregateFunction.SUM, col, distinct=True)
        ) is AggregateCategory.DISTINCT


class TestReconstruction:
    def test_paper_view_roundtrip(self):
        view = product_sales_view(1997)
        reconstructor, aux, database = build(view)
        rebuilt = reconstructor.reconstruct(aux.materialize(database))
        assert_same_bag(rebuilt, view.evaluate(database))

    def test_max_view_roundtrip_uses_price_times_count(self):
        view = product_sales_max_view()
        reconstructor, aux, database = build(view)
        rebuilt = reconstructor.reconstruct(aux.materialize(database))
        assert_same_bag(rebuilt, view.evaluate(database))

    def test_avg_reconstruction(self):
        view = make_view(
            "v",
            ("sale", "time"),
            [
                GroupByItem(Column("month", "time")),
                AggregateItem(
                    AggregateFunction.AVG, Column("price", "sale"), alias="avg_p"
                ),
            ],
            joins=[JoinCondition("sale", "timeid", "time", "id")],
        )
        reconstructor, aux, database = build(view)
        rebuilt = reconstructor.reconstruct(aux.materialize(database))
        assert_same_bag(rebuilt, view.evaluate(database))

    def test_csmas_over_dimension_attribute_uses_cnt0(self):
        # SUM(time.month): month is stored raw in timedtl, so the value
        # must be weighted by the root count (f(a * cnt0)).
        view = make_view(
            "v",
            ("sale", "time"),
            [
                GroupByItem(Column("productid", "sale")),
                AggregateItem(
                    AggregateFunction.SUM, Column("month", "time"), alias="s"
                ),
            ],
            joins=[JoinCondition("sale", "timeid", "time", "id")],
        )
        reconstructor, aux, database = build(view)
        rebuilt = reconstructor.reconstruct(aux.materialize(database))
        assert_same_bag(rebuilt, view.evaluate(database))

    def test_group_filter_restricts_output(self):
        view = product_sales_view(1997)
        reconstructor, aux, database = build(view)
        relations = aux.materialize(database)
        restricted = reconstructor.reconstruct(
            relations, group_filter=frozenset({(1,)})
        )
        assert [row[0] for row in restricted] == [1]

    def test_having_applied_after_reconstruction(self):
        view = make_view(
            "v",
            ("sale",),
            [
                GroupByItem(Column("productid", "sale")),
                AggregateItem(AggregateFunction.COUNT, None, alias="c"),
            ],
            having=Comparison(">", Column("c"), Literal(2)),
        )
        reconstructor, aux, database = build(view)
        # The single-table CSMAS view eliminates its auxiliary view, so
        # reconstruct straight from raw detail (unit multiplicity).
        rebuilt = reconstructor.reconstruct({"sale": database.relation("sale")})
        assert_same_bag(rebuilt, view.evaluate(database))

    def test_missing_relation_raises(self):
        view = product_sales_view(1997)
        reconstructor, aux, database = build(view)
        relations = aux.materialize(database)
        del relations["product"]
        with pytest.raises(ReconstructionError, match="product"):
            reconstructor.reconstruct(relations)

    def test_join_all_respects_start_hint(self):
        view = product_sales_view(1997)
        reconstructor, aux, database = build(view)
        relations = aux.materialize(database)
        a = reconstructor.join_all(relations)
        b = reconstructor.join_all(relations, start="product")
        # Same join result regardless of start table (column order may
        # differ, so compare cardinality and a shared projection).
        assert len(a) == len(b)
        from repro.engine.operators import project

        assert_same_bag(
            project(a, ["sale.cnt", "time.month"], distinct=False),
            project(b, ["sale.cnt", "time.month"], distinct=False),
        )

    def test_output_schema_matches_evaluation(self):
        view = product_sales_view(1997)
        reconstructor, __, database = build(view)
        evaluated = view.evaluate(database)
        assert reconstructor.output_schema == evaluated.schema


class TestMultiplicity:
    def test_count_star_is_sum_of_counts(self):
        view = product_sales_view(1997)
        reconstructor, aux, database = build(view)
        relations = aux.materialize(database)
        rebuilt = reconstructor.reconstruct(relations)
        by_month = {row[0]: row for row in rebuilt}
        assert by_month[1][2] == 7  # TotalCount for month 1
        # but saledtl holds only 6 groups for month 1+2+3 combined:
        assert len(relations["sale"]) == 6

    def test_raw_root_delta_has_unit_multiplicity(self):
        # When the root relation in the join is raw detail (a delta),
        # no count column is present and every row counts once.
        view = product_sales_view(1997)
        reconstructor, aux, database = build(view)
        relations = aux.materialize(database)
        relations["sale"] = database.relation("sale")
        joined = reconstructor.join_all(relations)
        program = reconstructor.compile_program(joined.schema)
        assert all(program.multiplicity(row) == 1 for row in joined)


class TestSqlRendering:
    def test_paper_reconstruction_sql(self):
        view = product_sales_view(1997)
        reconstructor, __, __db = build(view)
        sql = reconstructor.to_sql()
        assert "SUM(saledtl.sum_price) AS TotalPrice" in sql
        assert "SUM(saledtl.cnt) AS TotalCount" in sql
        assert "COUNT(DISTINCT productdtl.brand) AS DifferentBrands" in sql
        assert "FROM saledtl, timedtl, productdtl" in sql
        assert "GROUP BY timedtl.month" in sql

    def test_max_view_reconstruction_sql(self):
        # The paper's Section 3.2 rewrite: SUM(price*SaleCount).
        view = product_sales_max_view()
        reconstructor, __, __db = build(view)
        sql = reconstructor.to_sql()
        assert "MAX(saledtl.price) AS MaxPrice" in sql
        assert "SUM(saledtl.price*saledtl.cnt) AS TotalPrice" in sql
        assert "SUM(saledtl.cnt) AS TotalCount" in sql

    def test_avg_rendering(self):
        view = make_view(
            "v",
            ("sale", "time"),
            [
                GroupByItem(Column("month", "time")),
                AggregateItem(
                    AggregateFunction.AVG, Column("price", "sale"), alias="a"
                ),
            ],
            joins=[JoinCondition("sale", "timeid", "time", "id")],
        )
        reconstructor, __, __db = build(view)
        sql = reconstructor.to_sql()
        assert "SUM(saledtl.sum_price) / SUM(saledtl.cnt) AS a" in sql

    def test_sql_requires_all_views(self):
        from repro.workloads.snowflake import (
            build_snowflake_database,
            category_sales_by_product_view,
        )

        database = build_snowflake_database()
        view = category_sales_by_product_view()
        aux = derive_auxiliary_views(view, database)
        reconstructor = Reconstructor(view, aux, database)
        with pytest.raises(ReconstructionError, match="every table"):
            reconstructor.to_sql()
