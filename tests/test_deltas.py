"""Unit tests for deltas and transactions."""

import pytest

from repro.engine.deltas import Delta, Transaction


class TestDelta:
    def test_constructors(self):
        insertion = Delta.insertion("t", [(1,), (2,)])
        assert insertion.inserted == ((1,), (2,))
        assert insertion.deleted == ()
        deletion = Delta.deletion("t", [(3,)])
        assert deletion.deleted == ((3,),)

    def test_update_is_delete_plus_insert(self):
        update = Delta.update("t", old_rows=[(1, "a")], new_rows=[(1, "b")])
        assert update.deleted == ((1, "a"),)
        assert update.inserted == ((1, "b"),)

    def test_empty(self):
        assert Delta("t").empty
        assert not Delta.insertion("t", [(1,)]).empty

    def test_inverted(self):
        delta = Delta("t", inserted=((1,),), deleted=((2,),))
        inverse = delta.inverted()
        assert inverse.inserted == ((2,),)
        assert inverse.deleted == ((1,),)

    def test_rows_normalized_to_tuples(self):
        delta = Delta("t", inserted=[[1, 2]])
        assert delta.inserted == ((1, 2),)


class TestTransaction:
    def test_of_drops_empty_deltas(self):
        transaction = Transaction.of(Delta("a"), Delta.insertion("b", [(1,)]))
        assert transaction.tables == ("b",)

    def test_duplicate_table_rejected(self):
        with pytest.raises(ValueError, match="multiple deltas"):
            Transaction(
                (Delta.insertion("t", [(1,)]), Delta.deletion("t", [(2,)]))
            )

    def test_delta_for_missing_table_is_empty(self):
        transaction = Transaction.of(Delta.insertion("a", [(1,)]))
        assert transaction.delta_for("zzz").empty

    def test_empty_transaction(self):
        assert Transaction().empty
        assert not Transaction.of(Delta.insertion("a", [(1,)])).empty

    def test_from_mapping(self):
        transaction = Transaction.from_mapping(
            {"a": ([(1,)], []), "b": ([], [(2,)])}
        )
        assert transaction.delta_for("a").inserted == ((1,),)
        assert transaction.delta_for("b").deleted == ((2,),)

    def test_iteration(self):
        transaction = Transaction.of(Delta.insertion("a", [(1,)]))
        assert [d.table for d in transaction] == ["a"]
